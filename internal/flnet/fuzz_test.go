package flnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"net"
	"testing"
	"time"
)

// byteConn adapts a byte buffer to net.Conn so the framing/decoding path
// can be driven without sockets: reads drain the buffer, writes are
// discarded, deadlines are no-ops.
type byteConn struct {
	r *bytes.Reader
}

func (c *byteConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c *byteConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *byteConn) Close() error                       { return nil }
func (c *byteConn) LocalAddr() net.Addr                { return nil }
func (c *byteConn) RemoteAddr() net.Addr               { return nil }
func (c *byteConn) SetDeadline(t time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(t time.Time) error { return nil }

// encodeEnvelopes renders envelopes to wire bytes through the real Send
// path, for seed corpus construction.
func encodeEnvelopes(tb testing.TB, envs ...*Envelope) []byte {
	tb.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&lengthPrefixWriter{raw: &buf})
	for _, e := range envs {
		if err := enc.Encode(e); err != nil {
			tb.Fatalf("encode seed: %v", err)
		}
	}
	return buf.Bytes()
}

// FuzzProtocolDecode feeds arbitrary bytes to the server-facing decode
// path (length-prefix reassembly + gob) and checks it fails closed: Recv
// never panics and never spins — every call either yields an envelope or
// a terminal error, and corrupted length prefixes are rejected before
// allocation, not trusted.
func FuzzProtocolDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})             // zero-length frame: invalid
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // frame beyond maxFrameSize
	f.Add([]byte{0, 0, 0, 4, 1, 2})       // truncated frame body
	f.Add(encodeEnvelopes(f, &Envelope{Type: MsgJoin}))
	f.Add(encodeEnvelopes(f,
		&Envelope{Type: MsgJoinAck, ClientID: 3},
		&Envelope{Type: MsgTrainRequest, Round: 1, Weights: []float64{0.5, -2}, PrevWeights: []float64{0, 0}},
		&Envelope{Type: MsgUpdate, Round: 1, ClientID: 3, Weights: []float64{1, 2}, NumSamples: 7},
		&Envelope{Type: MsgDone, Weights: []float64{0.25}},
	))
	// A valid session with its final length prefix corrupted upward.
	tail := encodeEnvelopes(f, &Envelope{Type: MsgJoin})
	binary.BigEndian.PutUint32(tail[len(tail)-4:], maxFrameSize+1)
	f.Add(tail)

	f.Fuzz(func(t *testing.T, data []byte) {
		conn := NewConn(&byteConn{r: bytes.NewReader(bytes.Clone(data))}, 0)
		defer conn.Close()
		// The input holds at most len(data) frames; anything still decoding
		// after that many Recvs is consuming zero bytes per call.
		for i := 0; i <= len(data)+1; i++ {
			e, err := conn.Recv()
			if err != nil {
				return // fail-closed: decoding stopped with a terminal error
			}
			if e == nil {
				t.Fatal("Recv returned nil envelope with nil error")
			}
		}
		t.Fatalf("Recv yielded more envelopes than input frames (%d bytes)", len(data))
	})
}
