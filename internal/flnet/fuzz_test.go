package flnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"repro/internal/codec"
)

// byteConn adapts a byte buffer to net.Conn so the framing/decoding path
// can be driven without sockets: reads drain the buffer, writes are
// discarded, deadlines are no-ops.
type byteConn struct {
	r *bytes.Reader
}

func (c *byteConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c *byteConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *byteConn) Close() error                       { return nil }
func (c *byteConn) LocalAddr() net.Addr                { return nil }
func (c *byteConn) RemoteAddr() net.Addr               { return nil }
func (c *byteConn) SetDeadline(t time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(t time.Time) error { return nil }

// encodeEnvelopes renders envelopes to wire bytes through the real Send
// path, for seed corpus construction.
func encodeEnvelopes(tb testing.TB, envs ...*Envelope) []byte {
	tb.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&lengthPrefixWriter{raw: &buf})
	for _, e := range envs {
		if err := enc.Encode(e); err != nil {
			tb.Fatalf("encode seed: %v", err)
		}
	}
	return buf.Bytes()
}

// codecFrameSeed builds the wire bytes of one real compressed update for
// the corpus: an int8 top-k frame over a small synthetic delta.
func codecFrameSeed(tb testing.TB) []byte {
	tb.Helper()
	enc := codec.NewEncoder(codec.Spec{Quant: codec.Int8, TopK: 0.5})
	global := make([]float64, 70)
	weights := make([]float64, 70)
	for i := range weights {
		weights[i] = float64(i%13) - 6
	}
	return codec.EncodeWire(enc.Encode(1, 0, global, weights))
}

// FuzzProtocolDecode feeds arbitrary bytes to the server-facing decode
// path (length-prefix reassembly + gob) and checks it fails closed: Recv
// never panics and never spins — every call either yields an envelope or
// a terminal error, and corrupted length prefixes are rejected before
// allocation, not trusted. Envelopes that carry a codec Frame are pushed
// through the second decode stage the server runs (codec.DecodeWire),
// which must equally fail closed: no panic, allocations bounded by the
// frame size, and any accepted frame re-encodes to valid bytes.
func FuzzProtocolDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})             // zero-length frame: invalid
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // frame beyond maxFrameSize
	f.Add([]byte{0, 0, 0, 4, 1, 2})       // truncated frame body
	f.Add(encodeEnvelopes(f, &Envelope{Type: MsgJoin}))
	f.Add(encodeEnvelopes(f,
		&Envelope{Type: MsgJoinAck, ClientID: 3},
		&Envelope{Type: MsgTrainRequest, Round: 1, Weights: []float64{0.5, -2}, PrevWeights: []float64{0, 0}},
		&Envelope{Type: MsgUpdate, Round: 1, ClientID: 3, Weights: []float64{1, 2}, NumSamples: 7},
		&Envelope{Type: MsgDone, Weights: []float64{0.25}},
	))
	// A valid session with its final length prefix corrupted upward.
	tail := encodeEnvelopes(f, &Envelope{Type: MsgJoin})
	binary.BigEndian.PutUint32(tail[len(tail)-4:], maxFrameSize+1)
	f.Add(tail)

	// Codec sessions: Update envelopes whose Frame field carries the
	// compressed payload the server hands to codec.DecodeWire. Seed an
	// intact frame plus the hostile shapes the decoder must reject.
	frame := codecFrameSeed(f)
	f.Add(encodeEnvelopes(f,
		&Envelope{Type: MsgJoin, Codec: "int8,topk=0.5"},
		&Envelope{Type: MsgUpdate, Round: 0, ClientID: 1, Frame: frame, NumSamples: 9},
	))
	// Truncated scale section: drop bytes from the tail, which for a
	// sparse int8 frame cuts into scales/quantized values.
	f.Add(encodeEnvelopes(f, &Envelope{Type: MsgUpdate, Frame: frame[:len(frame)-10]}))
	// Out-of-range top-k index: the first stored index (right after the
	// 20-byte header) patched far beyond dim.
	oob := bytes.Clone(frame)
	binary.LittleEndian.PutUint32(oob[20:], 1<<30)
	f.Add(encodeEnvelopes(f, &Envelope{Type: MsgUpdate, Frame: oob}))
	// Zero-length block section: a dense int8 frame with a correctly sized
	// body that declares zero scale blocks for its 256 coordinates.
	zb := make([]byte, 0, 20+4+8+256)
	zb = append(zb, 0xC6, 0x01, byte(codec.Int8), 0)
	zb = binary.LittleEndian.AppendUint32(zb, 256) // dim
	zb = binary.LittleEndian.AppendUint64(zb, 0)   // topk
	zb = binary.LittleEndian.AppendUint32(zb, 0)   // k
	zb = binary.LittleEndian.AppendUint32(zb, 0)   // nblocks: liar, 1 block stored
	zb = append(zb, make([]byte, 8+256)...)
	f.Add(encodeEnvelopes(f, &Envelope{Type: MsgUpdate, Frame: zb}))

	f.Fuzz(func(t *testing.T, data []byte) {
		conn := NewConn(&byteConn{r: bytes.NewReader(bytes.Clone(data))}, 0)
		defer conn.Close()
		// The input holds at most len(data) frames; anything still decoding
		// after that many Recvs is consuming zero bytes per call.
		for i := 0; i <= len(data)+1; i++ {
			e, err := conn.Recv()
			if err != nil {
				return // fail-closed: decoding stopped with a terminal error
			}
			if e == nil {
				t.Fatal("Recv returned nil envelope with nil error")
			}
			if len(e.Frame) > 0 {
				// Second decode stage: the server feeds Update frames to the
				// codec decoder with the model dimension as the bound. It
				// must fail closed — reject or yield a frame that survives a
				// canonical re-encode — never panic or over-allocate.
				fr, err := codec.DecodeWire(e.Frame, 1<<20)
				if err == nil {
					if _, err := codec.DecodeWire(codec.EncodeWire(fr), 1<<20); err != nil {
						t.Fatalf("accepted frame fails canonical re-encode: %v", err)
					}
				}
			}
		}
		t.Fatalf("Recv yielded more envelopes than input frames (%d bytes)", len(data))
	})
}
