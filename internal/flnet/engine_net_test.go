package flnet

// Engine-over-sockets tests: the unified round engine driving real TCP
// federations under production participation — deadline-missing stragglers,
// zero-responder rounds, join-phase abuse, and async buffered aggregation.

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/nn"
)

// netFixture bundles the tiny task every socket test trains on.
type netFixture struct {
	train, test *dataset.Dataset
	shards      [][]int
	newModel    func(rng *rand.Rand) *nn.Network
}

func newNetFixture(t *testing.T, seed int64, clients int) *netFixture {
	t.Helper()
	spec := dataset.TinySpec()
	train, test := dataset.Generate(spec, seed)
	return &netFixture{
		train:  train,
		test:   test,
		shards: dataset.PartitionIID(rand.New(rand.NewSource(seed)), train.Len(), clients),
		newModel: func(rng *rand.Rand) *nn.Network {
			return nn.NewFashionCNN(rng, spec.Channels, spec.Size, spec.Classes)
		},
	}
}

func (f *netFixture) listen(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lis.Close() })
	return lis
}

// runBenign dials and serves one honest client until the server finishes.
func (f *netFixture) runBenign(addr string, shard int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	trainer := NewBenignTrainer(f.train, f.shards[shard], f.newModel, 0.05, 1, 8, rng)
	client, err := Dial(addr, trainer, 10*time.Second)
	if err != nil {
		return
	}
	_, _ = client.Run() // the server may drop us mid-round; fine
}

// joinSilent joins the federation and then never answers a training
// request: a real straggler that misses every RoundTimeout.
func joinSilent(t *testing.T, addr string, hold time.Duration) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Error(err)
		return
	}
	conn := NewConn(raw, 5*time.Second)
	defer conn.Close()
	if err := conn.Send(&Envelope{Type: MsgJoin}); err != nil {
		t.Error(err)
		return
	}
	if _, err := conn.Recv(); err != nil {
		t.Error(err)
		return
	}
	time.Sleep(hold)
}

// TestEngineDropsRealStraggler runs a federation where one selected client
// always misses RoundTimeout: every round must complete, and the engine's
// report must show the straggler as missing from Responded while the rounds
// still aggregate and evaluate.
func TestEngineDropsRealStraggler(t *testing.T) {
	f := newNetFixture(t, 21, 3)
	lis := f.listen(t)
	srv, err := NewServer(ServerConfig{
		MinClients:   3,
		PerRound:     3,
		Rounds:       2,
		RoundTimeout: 500 * time.Millisecond,
		Seed:         4,
	}, defense.FedAvg{}, f.newModel, f.test)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := srv.Serve(lis)
		done <- out{res, err}
	}()

	addr := lis.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.runBenign(addr, i, int64(10+i))
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		joinSilent(t, addr, 3*time.Second)
	}()

	var o out
	select {
	case o = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("server wedged on straggler")
	}
	wg.Wait()
	if o.err != nil {
		t.Fatalf("server: %v", o.err)
	}
	if len(o.res.Rounds) != 2 {
		t.Fatalf("server ran %d rounds, want 2", len(o.res.Rounds))
	}
	for _, rr := range o.res.Rounds {
		if rr.Selected != 3 {
			t.Fatalf("round %d selected %d, want 3", rr.Round, rr.Selected)
		}
		if rr.Responded != 2 {
			t.Fatalf("round %d responded %d, want 2 (straggler dropped)", rr.Round, rr.Responded)
		}
		if rr.Aggregations != 1 {
			t.Fatalf("round %d aggregations %d, want 1", rr.Round, rr.Aggregations)
		}
		if math.IsNaN(rr.Accuracy) {
			t.Fatalf("round %d was not evaluated", rr.Round)
		}
	}
}

// TestEngineZeroResponderRounds runs a federation whose only client never
// answers: every round must complete with zero responders, be recorded as
// such, and leave the global weights untouched.
func TestEngineZeroResponderRounds(t *testing.T) {
	f := newNetFixture(t, 22, 1)
	lis := f.listen(t)
	const seed = 9
	srv, err := NewServer(ServerConfig{
		MinClients:   1,
		PerRound:     1,
		Rounds:       2,
		RoundTimeout: 300 * time.Millisecond,
		Seed:         seed,
	}, defense.FedAvg{}, f.newModel, nil /* no test set: weight check below */)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := srv.Serve(lis)
		done <- out{res, err}
	}()
	go joinSilent(t, lis.Addr().String(), 2*time.Second)

	var o out
	select {
	case o = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("server wedged on zero responders")
	}
	if o.err != nil {
		t.Fatalf("server: %v", o.err)
	}
	if len(o.res.Rounds) != 2 {
		t.Fatalf("server ran %d rounds, want 2", len(o.res.Rounds))
	}
	for _, rr := range o.res.Rounds {
		if rr.Responded != 0 || rr.Aggregations != 0 {
			t.Fatalf("round %d: responded %d aggregations %d, want 0/0", rr.Round, rr.Responded, rr.Aggregations)
		}
	}
	// Zero responders ever: the final weights are exactly the seed's
	// initial model.
	initial := f.newModel(rand.New(rand.NewSource(seed))).WeightVector()
	if len(o.res.FinalWeights) != len(initial) {
		t.Fatalf("final weights length %d, want %d", len(o.res.FinalWeights), len(initial))
	}
	for i := range initial {
		if o.res.FinalWeights[i] != initial[i] {
			t.Fatalf("global weights moved at %d despite zero responders", i)
		}
	}
}

// TestHandshakeDeadlineUnblocksJoinPhase: a half-open connection that sends
// nothing must only hold the join phase for HandshakeTimeout (not the much
// larger RoundTimeout), after which a real client can complete the session.
func TestHandshakeDeadlineUnblocksJoinPhase(t *testing.T) {
	f := newNetFixture(t, 23, 1)
	lis := f.listen(t)
	srv, err := NewServer(ServerConfig{
		MinClients:       1,
		PerRound:         1,
		Rounds:           1,
		RoundTimeout:     time.Hour, // the legacy handshake deadline: would wedge the test
		HandshakeTimeout: 200 * time.Millisecond,
		Seed:             5,
	}, defense.FedAvg{}, f.newModel, f.test)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Serve(lis)
		done <- err
	}()

	addr := lis.Addr().String()
	// A half-open connection that never says hello.
	silent, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	// Give the server time to accept the garbage conn first, then join for
	// real: the handshake deadline must have evicted the silent peer.
	time.Sleep(50 * time.Millisecond)
	go f.runBenign(addr, 0, 31)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("half-open connection stalled the join phase")
	}
}

// TestAcceptTimeoutFailsFast: with AcceptTimeout set and no clients, Serve
// must fail with a join-phase timeout instead of waiting forever.
func TestAcceptTimeoutFailsFast(t *testing.T) {
	f := newNetFixture(t, 24, 1)
	lis := f.listen(t)
	srv, err := NewServer(ServerConfig{
		MinClients:    1,
		PerRound:      1,
		Rounds:        1,
		RoundTimeout:  time.Second,
		AcceptTimeout: 300 * time.Millisecond,
		Seed:          6,
	}, defense.FedAvg{}, f.newModel, f.test)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Serve(lis)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected a join-phase timeout error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AcceptTimeout did not unblock the join phase")
	}
}

// TestAsyncBufferedOverSockets drives the engine's FedBuff-style mode over
// real connections: the federation completes, buffer flushes happen, and
// the model is evaluated every round.
func TestAsyncBufferedOverSockets(t *testing.T) {
	f := newNetFixture(t, 25, 3)
	lis := f.listen(t)
	srv, err := NewServer(ServerConfig{
		MinClients:   3,
		PerRound:     2,
		Rounds:       4,
		RoundTimeout: 10 * time.Second,
		Seed:         7,
		Scenario:     fl.Scenario{Async: &fl.AsyncConfig{Buffer: 3, MaxDelay: 1}},
	}, defense.FedAvg{}, f.newModel, f.test)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := srv.Serve(lis)
		done <- out{res, err}
	}()
	addr := lis.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.runBenign(addr, i, int64(40+i))
		}(i)
	}
	var o out
	select {
	case o = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("async federation wedged")
	}
	wg.Wait()
	if o.err != nil {
		t.Fatalf("server: %v", o.err)
	}
	if len(o.res.Rounds) != 4 {
		t.Fatalf("server ran %d rounds, want 4", len(o.res.Rounds))
	}
	totalAggs := 0
	for _, rr := range o.res.Rounds {
		totalAggs += rr.Aggregations
		if math.IsNaN(rr.Accuracy) {
			t.Fatalf("round %d was not evaluated", rr.Round)
		}
	}
	if totalAggs == 0 {
		t.Fatal("async federation never aggregated")
	}
	if math.IsNaN(o.res.FinalAccuracy) {
		t.Fatal("final accuracy missing")
	}
}
