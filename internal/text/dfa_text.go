package text

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// AttackConfig parameterizes the text DFA variants.
type AttackConfig struct {
	// SampleCount is |S|, the number of synthetic sequences per round.
	SampleCount int
	// Epochs is E, the synthesis optimization epochs.
	Epochs int
	// LR is the synthesis learning rate.
	LR float64
	// FineTuneEpochs and FineTuneLR configure the adversarial fine-tuning
	// of the classifier on (S, Ỹ).
	FineTuneEpochs int
	FineTuneLR     float64
}

func (c *AttackConfig) validate() error {
	if c.SampleCount <= 0 || c.Epochs <= 0 {
		return fmt.Errorf("text: invalid attack config %+v", *c)
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.FineTuneEpochs <= 0 {
		c.FineTuneEpochs = 3
	}
	if c.FineTuneLR <= 0 {
		c.FineTuneLR = 0.05
	}
	return nil
}

// SynthesizeDFAR is DFA-R for text (Section III-C's Seq2Seq sketch,
// continuous relaxation): a trainable linear "filter" maps a static random
// embedding sequence to the synthetic sequence, optimized so the frozen
// classifier's prediction approaches the uniform distribution. It returns
// the synthetic embedding sequences [|S|, T, dim] and the per-epoch losses.
func SynthesizeDFAR(model *RNNClassifier, cfg AttackConfig, rng *rand.Rand) (*tensor.Tensor, []float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	dim := model.Dim
	uniform := nn.UniformTarget(model.Classes)

	// Static random source sequences R and the trainable filter (one shared
	// linear map, matching the single filter layer of the image variant).
	src := tensor.New(cfg.SampleCount, model.SeqLen, dim)
	src.FillUniform(rng, -1, 1)
	filter := tensor.New(dim, dim)
	filter.FillUniform(rng, -limit(dim), limit(dim))
	bias := tensor.New(dim)

	apply := func() *tensor.Tensor {
		flat := src.Reshape(cfg.SampleCount*model.SeqLen, dim)
		out := tensor.MatMul(flat, filter)
		for r := 0; r < out.Shape[0]; r++ {
			row := out.Data[r*dim : (r+1)*dim]
			for j := 0; j < dim; j++ {
				row[j] += bias.Data[j]
			}
		}
		return out.Reshape(cfg.SampleCount, model.SeqLen, dim)
	}

	losses := make([]float64, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		synth := apply()
		logits := model.ForwardEmbeddings(synth, true)
		loss, grad := nn.CrossEntropySoft(logits, uniform)
		dx := model.BackwardToEmbeddings(grad)
		model.ZeroGrads() // classifier is frozen during synthesis
		// Filter gradients: dFilter = srcᵀ·dx, dBias = colsum(dx).
		flatSrc := src.Reshape(cfg.SampleCount*model.SeqLen, dim)
		flatDx := dx.Reshape(cfg.SampleCount*model.SeqLen, dim)
		dFilter := tensor.MatMulTransA(flatSrc, flatDx)
		filter.AxpyInPlace(-cfg.LR, dFilter)
		for r := 0; r < flatDx.Shape[0]; r++ {
			row := flatDx.Data[r*dim : (r+1)*dim]
			for j := 0; j < dim; j++ {
				bias.Data[j] -= cfg.LR * row[j]
			}
		}
		losses[e] = loss
	}
	return apply(), losses, nil
}

// SynthesizeDFAG is DFA-G for text (Section III-D's recurrent-generator
// sketch, continuous relaxation): a tanh generator maps fixed Gaussian noise
// sequences to embedding sequences, trained to *maximize* the classifier's
// cross-entropy against the fixed class Ỹ. It returns the sequences, the
// per-epoch objective values and Ỹ.
func SynthesizeDFAG(model *RNNClassifier, cfg AttackConfig, rng *rand.Rand) (*tensor.Tensor, []float64, int, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, 0, err
	}
	dim := model.Dim
	yTilde := rng.Intn(model.Classes)
	labels := make([]int, cfg.SampleCount)
	for i := range labels {
		labels[i] = yTilde
	}

	noise := tensor.New(cfg.SampleCount, model.SeqLen, dim)
	noise.FillNormal(rng, 0, 1)
	wg := tensor.New(dim, dim)
	wg.FillUniform(rng, -limit(dim), limit(dim))
	bg := tensor.New(dim)

	apply := func(train bool) (*tensor.Tensor, *tensor.Tensor) {
		flat := noise.Reshape(cfg.SampleCount*model.SeqLen, dim)
		pre := tensor.MatMul(flat, wg)
		for r := 0; r < pre.Shape[0]; r++ {
			row := pre.Data[r*dim : (r+1)*dim]
			for j := 0; j < dim; j++ {
				row[j] += bg.Data[j]
			}
		}
		out := pre.Clone()
		for i := range out.Data {
			out.Data[i] = math.Tanh(out.Data[i])
		}
		if !train {
			return out.Reshape(cfg.SampleCount, model.SeqLen, dim), nil
		}
		return out.Reshape(cfg.SampleCount, model.SeqLen, dim), out
	}

	losses := make([]float64, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		synth, act := apply(true)
		logits := model.ForwardEmbeddings(synth, true)
		loss, grad := nn.CrossEntropy(logits, labels)
		grad.ScaleInPlace(-1) // gradient ascent: steer away from Ỹ
		dx := model.BackwardToEmbeddings(grad)
		model.ZeroGrads()
		// Through tanh: dPre = dx ⊙ (1 − act²).
		flatDx := dx.Reshape(cfg.SampleCount*model.SeqLen, dim)
		for i := range flatDx.Data {
			y := act.Data[i]
			flatDx.Data[i] *= 1 - y*y
		}
		flatNoise := noise.Reshape(cfg.SampleCount*model.SeqLen, dim)
		dWg := tensor.MatMulTransA(flatNoise, flatDx)
		wg.AxpyInPlace(-cfg.LR, dWg)
		for r := 0; r < flatDx.Shape[0]; r++ {
			row := flatDx.Data[r*dim : (r+1)*dim]
			for j := 0; j < dim; j++ {
				bg.Data[j] -= cfg.LR * row[j]
			}
		}
		losses[e] = loss
	}
	synth, _ := apply(false)
	return synth, losses, yTilde, nil
}

// Poison fine-tunes the classifier on the synthetic embedding set labelled
// Ỹ — step 2 of the DFA framework — and returns the final training loss.
func Poison(model *RNNClassifier, synth *tensor.Tensor, yTilde int, cfg AttackConfig) float64 {
	labels := make([]int, synth.Shape[0])
	for i := range labels {
		labels[i] = yTilde
	}
	last := 0.0
	for e := 0; e < cfg.FineTuneEpochs; e++ {
		logits := model.ForwardEmbeddings(synth, true)
		loss, grad := nn.CrossEntropy(logits, labels)
		model.BackwardToEmbeddings(grad)
		model.Step(cfg.FineTuneLR)
		last = loss
	}
	return last
}
