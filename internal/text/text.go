// Package text implements the paper's future-work extension (Section VI and
// the sketches in III-C/III-D): applying the data-free attack to text
// classification. The paper proposes replacing DFA-R's convolutional filter
// with a sequence model and DFA-G's TCNN with a recurrent generator; this
// package provides the substrate — a synthetic text-classification task, a
// recurrent (RNN) classifier trained by backpropagation through time — and
// continuous-relaxation DFA attacks that synthesize adversarial *embedding
// sequences* directly.
//
// The continuous relaxation is the one deliberate substitution: gradients
// cannot flow through discrete token sampling, so the attacks optimize in
// embedding space, which is exactly the quantity the classifier consumes
// after its embedding lookup. The attacks therefore exercise the same
// optimization loop as the image DFA variants (frozen classifier, synthesis
// objective, adversarial fine-tuning on (S, Ỹ)).
package text

import (
	"fmt"
	"math/rand"
)

// Task is a synthetic text-classification problem: each class is a Markov
// chain over a shared vocabulary, and a sample is a fixed-length token
// sequence drawn from its class's chain.
type Task struct {
	// Vocab is the vocabulary size.
	Vocab int
	// SeqLen is the fixed sequence length.
	SeqLen int
	// Classes is the number of labels.
	Classes int

	// chains[c][v] is the transition distribution of class c from token v.
	chains [][][]float64
}

// NewTask builds a task with class-conditional Markov chains. Chains are
// sparse-ish (each token transitions mostly to a small class-specific
// successor set), which gives classes distinct n-gram signatures an RNN can
// learn quickly.
func NewTask(vocab, seqLen, classes int, seed int64) *Task {
	if vocab < 2 || seqLen < 2 || classes < 2 {
		panic(fmt.Sprintf("text: invalid task %d/%d/%d", vocab, seqLen, classes))
	}
	t := &Task{Vocab: vocab, SeqLen: seqLen, Classes: classes}
	t.chains = make([][][]float64, classes)
	for c := 0; c < classes; c++ {
		rng := rand.New(rand.NewSource(seed + int64(c)*7919))
		chain := make([][]float64, vocab)
		for v := 0; v < vocab; v++ {
			row := make([]float64, vocab)
			// Two preferred successors per token per class give every class
			// a sharp bigram signature.
			for k := 0; k < 2; k++ {
				row[rng.Intn(vocab)] += 1.0
			}
			// Light smoothing so every transition stays possible.
			total := 0.0
			for i := range row {
				row[i] += 0.05
				total += row[i]
			}
			for i := range row {
				row[i] /= total
			}
			chain[v] = row
		}
		t.chains[c] = chain
	}
	return t
}

// Sample draws one token sequence of the given class.
func (t *Task) Sample(class int, rng *rand.Rand) []int {
	seq := make([]int, t.SeqLen)
	cur := rng.Intn(t.Vocab)
	seq[0] = cur
	for i := 1; i < t.SeqLen; i++ {
		row := t.chains[class][cur]
		u := rng.Float64()
		cum := 0.0
		next := t.Vocab - 1
		for v, p := range row {
			cum += p
			if u < cum {
				next = v
				break
			}
		}
		seq[i] = next
		cur = next
	}
	return seq
}

// Corpus is a labelled set of token sequences.
type Corpus struct {
	Seqs    [][]int
	Labels  []int
	Classes int
}

// Generate draws n balanced samples.
func (t *Task) Generate(n int, rng *rand.Rand) *Corpus {
	c := &Corpus{Seqs: make([][]int, n), Labels: make([]int, n), Classes: t.Classes}
	for i := 0; i < n; i++ {
		label := rng.Intn(t.Classes)
		c.Labels[i] = label
		c.Seqs[i] = t.Sample(label, rng)
	}
	return c
}

// Len returns the number of samples.
func (c *Corpus) Len() int { return len(c.Seqs) }
