package text

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// RNNClassifier is a vanilla recurrent network for fixed-length token
// sequences: embedding lookup → tanh RNN over time → dense head on the
// mean-pooled hidden states (pooling aggregates the n-gram evidence the
// Markov task carries at every step). Backpropagation through time is
// implemented explicitly; the embedding-sequence forward/backward path
// (ForwardEmbeddings / BackwardToEmbeddings) is the hook the text DFA
// attacks optimize through, mirroring how the image attacks backpropagate
// through the frozen CNN to their synthetic images.
type RNNClassifier struct {
	Vocab, Dim, Hidden, Classes, SeqLen int

	emb *tensor.Tensor // [vocab, dim]
	wxh *tensor.Tensor // [dim, hidden]
	whh *tensor.Tensor // [hidden, hidden]
	bh  *tensor.Tensor // [hidden]
	why *tensor.Tensor // [hidden, classes]
	by  *tensor.Tensor // [classes]

	gEmb, gWxh, gWhh, gBh, gWhy, gBy *tensor.Tensor

	// BPTT caches of the last training-mode forward pass.
	lastEmb    *tensor.Tensor   // [batch, T, dim]
	lastHidden []*tensor.Tensor // T × [batch, hidden]
	lastPooled *tensor.Tensor   // [batch, hidden]
	lastTokens [][]int          // nil when the input came as embeddings
}

// NewRNNClassifier builds the classifier with uniform He-style init.
func NewRNNClassifier(rng *rand.Rand, vocab, dim, hidden, classes, seqLen int) *RNNClassifier {
	if vocab < 2 || dim < 1 || hidden < 1 || classes < 2 || seqLen < 1 {
		panic(fmt.Sprintf("text: invalid RNN config %d/%d/%d/%d/%d", vocab, dim, hidden, classes, seqLen))
	}
	m := &RNNClassifier{Vocab: vocab, Dim: dim, Hidden: hidden, Classes: classes, SeqLen: seqLen}
	m.emb = tensor.New(vocab, dim)
	m.wxh = tensor.New(dim, hidden)
	m.whh = tensor.New(hidden, hidden)
	m.bh = tensor.New(hidden)
	m.why = tensor.New(hidden, classes)
	m.by = tensor.New(classes)
	m.emb.FillUniform(rng, -0.5, 0.5)
	m.wxh.FillUniform(rng, -limit(dim), limit(dim))
	m.whh.FillUniform(rng, -limit(hidden), limit(hidden))
	m.why.FillUniform(rng, -limit(hidden), limit(hidden))
	m.gEmb = tensor.New(vocab, dim)
	m.gWxh = tensor.New(dim, hidden)
	m.gWhh = tensor.New(hidden, hidden)
	m.gBh = tensor.New(hidden)
	m.gWhy = tensor.New(hidden, classes)
	m.gBy = tensor.New(classes)
	return m
}

func limit(fan int) float64 { return math.Sqrt(6.0 / float64(fan)) }

// Params returns the trainable tensors.
func (m *RNNClassifier) Params() []*tensor.Tensor {
	return []*tensor.Tensor{m.emb, m.wxh, m.whh, m.bh, m.why, m.by}
}

// Grads returns gradient tensors aligned with Params.
func (m *RNNClassifier) Grads() []*tensor.Tensor {
	return []*tensor.Tensor{m.gEmb, m.gWxh, m.gWhh, m.gBh, m.gWhy, m.gBy}
}

// ZeroGrads clears the accumulated gradients.
func (m *RNNClassifier) ZeroGrads() {
	for _, g := range m.Grads() {
		g.Zero()
	}
}

// NumParams returns the total trainable scalar count.
func (m *RNNClassifier) NumParams() int {
	total := 0
	for _, p := range m.Params() {
		total += p.Len()
	}
	return total
}

// WeightVector flattens the parameters (the federated update currency).
func (m *RNNClassifier) WeightVector() []float64 {
	out := make([]float64, 0, m.NumParams())
	for _, p := range m.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// SetWeightVector loads a flat vector produced by WeightVector.
func (m *RNNClassifier) SetWeightVector(v []float64) error {
	if len(v) != m.NumParams() {
		return fmt.Errorf("text: weight vector length %d, want %d", len(v), m.NumParams())
	}
	off := 0
	for _, p := range m.Params() {
		copy(p.Data, v[off:off+p.Len()])
		off += p.Len()
	}
	return nil
}

// Embed looks up the embedding sequence of a token batch: [batch, T, dim].
func (m *RNNClassifier) Embed(tokens [][]int) *tensor.Tensor {
	batch := len(tokens)
	out := tensor.New(batch, m.SeqLen, m.Dim)
	for b, seq := range tokens {
		if len(seq) != m.SeqLen {
			panic(fmt.Sprintf("text: sequence length %d, want %d", len(seq), m.SeqLen))
		}
		for t, tok := range seq {
			if tok < 0 || tok >= m.Vocab {
				panic(fmt.Sprintf("text: token %d out of vocab %d", tok, m.Vocab))
			}
			copy(out.Data[(b*m.SeqLen+t)*m.Dim:(b*m.SeqLen+t+1)*m.Dim],
				m.emb.Data[tok*m.Dim:(tok+1)*m.Dim])
		}
	}
	return out
}

// ForwardTokens classifies token sequences; train retains BPTT caches
// (including the token identities for the embedding gradient).
func (m *RNNClassifier) ForwardTokens(tokens [][]int, train bool) *tensor.Tensor {
	embedded := m.Embed(tokens)
	logits := m.ForwardEmbeddings(embedded, train)
	if train {
		m.lastTokens = tokens
	}
	return logits
}

// ForwardEmbeddings classifies pre-embedded sequences [batch, T, dim] — the
// continuous input path the DFA text attacks differentiate through.
func (m *RNNClassifier) ForwardEmbeddings(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch := x.Shape[0]
	if x.Shape[1] != m.SeqLen || x.Shape[2] != m.Dim {
		panic(fmt.Sprintf("text: embeddings shape %v, want [*,%d,%d]", x.Shape, m.SeqLen, m.Dim))
	}
	h := tensor.New(batch, m.Hidden)
	pooled := tensor.New(batch, m.Hidden)
	var hiddens []*tensor.Tensor
	for t := 0; t < m.SeqLen; t++ {
		xt := timeSlice(x, t)         // [batch, dim]
		a := tensor.MatMul(xt, m.wxh) // [batch, hidden]
		a.AddInPlace(tensor.MatMul(h, m.whh))
		for b := 0; b < batch; b++ {
			row := a.Data[b*m.Hidden : (b+1)*m.Hidden]
			for j := 0; j < m.Hidden; j++ {
				row[j] = math.Tanh(row[j] + m.bh.Data[j])
			}
		}
		h = a
		pooled.AddInPlace(h)
		if train {
			hiddens = append(hiddens, h)
		}
	}
	pooled.ScaleInPlace(1 / float64(m.SeqLen))
	logits := tensor.MatMul(pooled, m.why)
	for b := 0; b < batch; b++ {
		row := logits.Data[b*m.Classes : (b+1)*m.Classes]
		for j := 0; j < m.Classes; j++ {
			row[j] += m.by.Data[j]
		}
	}
	if train {
		m.lastEmb = x
		m.lastHidden = hiddens
		m.lastPooled = pooled
		m.lastTokens = nil
	}
	return logits
}

// BackwardToEmbeddings runs BPTT from the logits gradient, accumulating
// parameter gradients and returning the gradient w.r.t. the embedding
// sequence. When the last forward came from ForwardTokens, the embedding
// table's gradient rows are also accumulated.
func (m *RNNClassifier) BackwardToEmbeddings(gradLogits *tensor.Tensor) *tensor.Tensor {
	x := m.lastEmb
	batch := x.Shape[0]

	m.gWhy.AddInPlace(tensor.MatMulTransA(m.lastPooled, gradLogits))
	for b := 0; b < batch; b++ {
		row := gradLogits.Data[b*m.Classes : (b+1)*m.Classes]
		for j := 0; j < m.Classes; j++ {
			m.gBy.Data[j] += row[j]
		}
	}
	// Every time step receives 1/T of the pooled-head gradient, plus the
	// recurrent gradient carried back from step t+1.
	dPool := tensor.MatMulTransB(gradLogits, m.why) // [batch, hidden]
	dPool.ScaleInPlace(1 / float64(m.SeqLen))
	dh := tensor.New(batch, m.Hidden)
	dx := tensor.New(batch, m.SeqLen, m.Dim)

	for t := m.SeqLen - 1; t >= 0; t-- {
		ht := m.lastHidden[t]
		// da = (dh + dPool) ⊙ (1 − h²)
		da := dh.Clone()
		da.AddInPlace(dPool)
		for i := range da.Data {
			y := ht.Data[i]
			da.Data[i] *= 1 - y*y
		}
		xt := timeSlice(x, t)
		m.gWxh.AddInPlace(tensor.MatMulTransA(xt, da))
		var hPrev *tensor.Tensor
		if t > 0 {
			hPrev = m.lastHidden[t-1]
		} else {
			hPrev = tensor.New(batch, m.Hidden)
		}
		m.gWhh.AddInPlace(tensor.MatMulTransA(hPrev, da))
		for b := 0; b < batch; b++ {
			row := da.Data[b*m.Hidden : (b+1)*m.Hidden]
			for j := 0; j < m.Hidden; j++ {
				m.gBh.Data[j] += row[j]
			}
		}
		dxt := tensor.MatMulTransB(da, m.wxh) // [batch, dim]
		for b := 0; b < batch; b++ {
			copy(dx.Data[(b*m.SeqLen+t)*m.Dim:(b*m.SeqLen+t+1)*m.Dim],
				dxt.Data[b*m.Dim:(b+1)*m.Dim])
		}
		dh = tensor.MatMulTransB(da, m.whh)
	}

	if m.lastTokens != nil {
		for b, seq := range m.lastTokens {
			for t, tok := range seq {
				src := dx.Data[(b*m.SeqLen+t)*m.Dim : (b*m.SeqLen+t+1)*m.Dim]
				dst := m.gEmb.Data[tok*m.Dim : (tok+1)*m.Dim]
				for i := range src {
					dst[i] += src[i]
				}
			}
		}
	}
	return dx
}

// timeSlice extracts step t of [batch, T, dim] as a fresh [batch, dim].
func timeSlice(x *tensor.Tensor, t int) *tensor.Tensor {
	batch, seqLen, dim := x.Shape[0], x.Shape[1], x.Shape[2]
	out := tensor.New(batch, dim)
	for b := 0; b < batch; b++ {
		copy(out.Data[b*dim:(b+1)*dim], x.Data[(b*seqLen+t)*dim:(b*seqLen+t+1)*dim])
	}
	return out
}

// Step applies one plain-SGD update and zeroes the gradients.
func (m *RNNClassifier) Step(lr float64) {
	params := m.Params()
	grads := m.Grads()
	for i, p := range params {
		g := grads[i]
		for j := range p.Data {
			p.Data[j] -= lr * g.Data[j]
		}
	}
	m.ZeroGrads()
}

// TrainBatch performs one step on labelled token sequences, returning the
// pre-step loss.
func (m *RNNClassifier) TrainBatch(tokens [][]int, labels []int, lr float64) float64 {
	logits := m.ForwardTokens(tokens, true)
	loss, grad := nn.CrossEntropy(logits, labels)
	m.BackwardToEmbeddings(grad)
	m.Step(lr)
	return loss
}

// Accuracy evaluates top-1 accuracy on a corpus.
func (m *RNNClassifier) Accuracy(c *Corpus) float64 {
	if c.Len() == 0 {
		return 0
	}
	correct := 0
	const batch = 64
	for start := 0; start < c.Len(); start += batch {
		end := start + batch
		if end > c.Len() {
			end = c.Len()
		}
		logits := m.ForwardTokens(c.Seqs[start:end], false)
		preds := nn.Predict(logits)
		for i, p := range preds {
			if p == c.Labels[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(c.Len())
}
