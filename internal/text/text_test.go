package text

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func testTask() *Task { return NewTask(20, 10, 4, 1) }

func trainClassifier(t *testing.T, task *Task, epochs int) (*RNNClassifier, *Corpus, *Corpus) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	train := task.Generate(600, rng)
	test := task.Generate(200, rng)
	model := NewRNNClassifier(rand.New(rand.NewSource(3)), task.Vocab, 8, 16, task.Classes, task.SeqLen)
	for e := 0; e < epochs; e++ {
		for start := 0; start < train.Len(); start += 32 {
			end := start + 32
			if end > train.Len() {
				end = train.Len()
			}
			model.TrainBatch(train.Seqs[start:end], train.Labels[start:end], 0.1)
		}
	}
	return model, train, test
}

func TestTaskSampling(t *testing.T) {
	task := testTask()
	rng := rand.New(rand.NewSource(4))
	seq := task.Sample(0, rng)
	if len(seq) != task.SeqLen {
		t.Fatalf("sequence length %d", len(seq))
	}
	for _, tok := range seq {
		if tok < 0 || tok >= task.Vocab {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
	corpus := task.Generate(100, rng)
	if corpus.Len() != 100 {
		t.Fatalf("corpus size %d", corpus.Len())
	}
	seen := map[int]bool{}
	for _, l := range corpus.Labels {
		seen[l] = true
	}
	if len(seen) < 2 {
		t.Fatal("corpus should contain multiple classes")
	}
}

func TestTaskInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid task")
		}
	}()
	NewTask(1, 10, 4, 1)
}

func TestRNNLearnsTask(t *testing.T) {
	task := testTask()
	model, _, test := trainClassifier(t, task, 20)
	acc := model.Accuracy(test)
	if acc < 0.55 {
		t.Fatalf("RNN failed to learn the Markov task: accuracy %.3f", acc)
	}
}

func TestRNNWeightVectorRoundTrip(t *testing.T) {
	task := testTask()
	a := NewRNNClassifier(rand.New(rand.NewSource(5)), task.Vocab, 8, 16, task.Classes, task.SeqLen)
	b := NewRNNClassifier(rand.New(rand.NewSource(6)), task.Vocab, 8, 16, task.Classes, task.SeqLen)
	v := a.WeightVector()
	if len(v) != a.NumParams() {
		t.Fatalf("weight vector length %d", len(v))
	}
	if err := b.SetWeightVector(v); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	corpus := task.Generate(16, rng)
	la := a.ForwardTokens(corpus.Seqs, false)
	lb := b.ForwardTokens(corpus.Seqs, false)
	for i := range la.Data {
		if la.Data[i] != lb.Data[i] {
			t.Fatal("equal weights should give identical logits")
		}
	}
	if err := b.SetWeightVector(v[:5]); err == nil {
		t.Fatal("expected error for truncated vector")
	}
}

// TestRNNGradients is the BPTT correctness check: analytic gradients of all
// parameters and of the embedding input against central finite differences.
func TestRNNGradients(t *testing.T) {
	task := NewTask(10, 5, 3, 8)
	model := NewRNNClassifier(rand.New(rand.NewSource(9)), task.Vocab, 4, 6, task.Classes, task.SeqLen)
	rng := rand.New(rand.NewSource(10))
	corpus := task.Generate(3, rng)

	lossOf := func() float64 {
		loss, _ := nn.CrossEntropy(model.ForwardTokens(corpus.Seqs, false), corpus.Labels)
		return loss
	}

	model.ZeroGrads()
	logits := model.ForwardTokens(corpus.Seqs, true)
	_, grad := nn.CrossEntropy(logits, corpus.Labels)
	dx := model.BackwardToEmbeddings(grad)

	const eps = 1e-5
	const tol = 1e-4
	for pi, p := range model.Params() {
		g := model.Grads()[pi]
		checks := 10
		if p.Len() < checks {
			checks = p.Len()
		}
		for c := 0; c < checks; c++ {
			i := rng.Intn(p.Len())
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := lossOf()
			p.Data[i] = orig - eps
			lm := lossOf()
			p.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := g.Data[i]
			if math.Abs(numeric-analytic) > tol*math.Max(1, math.Abs(numeric)) {
				t.Errorf("param %d coord %d: analytic %.8f vs numeric %.8f", pi, i, analytic, numeric)
			}
		}
	}

	// Input (embedding-sequence) gradient via ForwardEmbeddings.
	x := model.Embed(corpus.Seqs)
	model.ZeroGrads()
	logits = model.ForwardEmbeddings(x, true)
	_, grad = nn.CrossEntropy(logits, corpus.Labels)
	dx = model.BackwardToEmbeddings(grad)
	model.ZeroGrads()
	for c := 0; c < 15; c++ {
		i := rng.Intn(x.Len())
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _ := nn.CrossEntropy(model.ForwardEmbeddings(x, false), corpus.Labels)
		x.Data[i] = orig - eps
		lm, _ := nn.CrossEntropy(model.ForwardEmbeddings(x, false), corpus.Labels)
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx.Data[i]) > tol*math.Max(1, math.Abs(numeric)) {
			t.Errorf("input coord %d: analytic %.8f vs numeric %.8f", i, dx.Data[i], numeric)
		}
	}
}

func TestDFARTextLossDecreases(t *testing.T) {
	task := testTask()
	model, _, _ := trainClassifier(t, task, 5)
	cfg := AttackConfig{SampleCount: 12, Epochs: 10, LR: 0.05}
	synth, losses, err := SynthesizeDFAR(model, cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if synth.Shape[0] != 12 || synth.Shape[1] != task.SeqLen || synth.Shape[2] != model.Dim {
		t.Fatalf("synthetic shape %v", synth.Shape)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("DFA-R text loss should decrease: %.4f -> %.4f", losses[0], losses[len(losses)-1])
	}
	if losses[len(losses)-1] < math.Log(float64(task.Classes))-1e-9 {
		t.Fatalf("loss %v below ln(L)", losses[len(losses)-1])
	}
}

func TestDFAGTextObjectiveIncreases(t *testing.T) {
	task := testTask()
	model, _, _ := trainClassifier(t, task, 5)
	cfg := AttackConfig{SampleCount: 12, Epochs: 10, LR: 0.05}
	synth, losses, yTilde, err := SynthesizeDFAG(model, cfg, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if yTilde < 0 || yTilde >= task.Classes {
		t.Fatalf("target class %d", yTilde)
	}
	if synth.Shape[0] != 12 {
		t.Fatalf("synthetic shape %v", synth.Shape)
	}
	if losses[len(losses)-1] <= losses[0] {
		t.Fatalf("DFA-G text objective should increase: %.4f -> %.4f", losses[0], losses[len(losses)-1])
	}
	// Generator outputs live in tanh range like real embeddings.
	for _, v := range synth.Data {
		if v < -1 || v > 1 {
			t.Fatalf("synthetic embedding %v outside [-1,1]", v)
		}
	}
}

// TestTextPoisoningReducesAccuracy is the end-to-end extension check: the
// data-free synthetic sequences, labelled Ỹ, measurably degrade a trained
// text classifier — the text analogue of the paper's image result.
func TestTextPoisoningReducesAccuracy(t *testing.T) {
	task := testTask()
	model, _, test := trainClassifier(t, task, 6)
	before := model.Accuracy(test)

	cfg := AttackConfig{SampleCount: 24, Epochs: 8, LR: 0.05, FineTuneEpochs: 6, FineTuneLR: 0.1}
	synth, _, yTilde, err := SynthesizeDFAG(model, cfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	Poison(model, synth, yTilde, cfg)
	after := model.Accuracy(test)
	if after >= before {
		t.Fatalf("text poisoning should reduce accuracy: %.3f -> %.3f", before, after)
	}
}

func TestAttackConfigValidation(t *testing.T) {
	task := testTask()
	model := NewRNNClassifier(rand.New(rand.NewSource(14)), task.Vocab, 4, 8, task.Classes, task.SeqLen)
	if _, _, err := SynthesizeDFAR(model, AttackConfig{}, rand.New(rand.NewSource(15))); err == nil {
		t.Fatal("expected error for empty config")
	}
	if _, _, _, err := SynthesizeDFAG(model, AttackConfig{SampleCount: 1}, rand.New(rand.NewSource(16))); err == nil {
		t.Fatal("expected error for zero epochs")
	}
}
