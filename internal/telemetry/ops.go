package telemetry

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewOpsMux assembles the unified operator endpoint: Prometheus metrics at
// /metrics and the standard pprof handlers under /debug/pprof/. Callers
// mount further surfaces (the forensics JSON handlers under /forensics/)
// on the returned mux, so one listener serves the whole ops plane.
func NewOpsMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w) // client went away; nothing to do
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = reg.WriteJSON(w) // client went away; nothing to do
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RegisterPoolGauges exposes the process-global tensor worker pool as
// scrape-time gauges: the configured width and the helper goroutines
// currently running. Callers pass the accessors (tensor.Workers,
// tensor.InUse) so this package stays free of kernel-layer imports.
func RegisterPoolGauges(reg *Registry, workers, inUse func() int) {
	if reg == nil {
		return
	}
	if workers != nil {
		reg.GaugeFunc("tensor_pool_workers",
			"Configured kernel worker-pool width (SetWorkers/-threads).",
			func() float64 { return float64(workers()) })
	}
	if inUse != nil {
		reg.GaugeFunc("tensor_pool_in_use",
			"Kernel helper goroutines currently running (pool occupancy).",
			func() float64 { return float64(inUse()) })
	}
}

// opsDrainTimeout bounds how long the shutdown function waits for in-flight
// scrapes and SSE subscribers to finish before hard-closing connections.
const opsDrainTimeout = 3 * time.Second

// ServeOps serves h on addr (e.g. ":9090", or ":0" for an ephemeral port)
// in a background goroutine for the lifetime of the run. It returns the
// bound address and a shutdown function.
//
// The shutdown function drains gracefully: it first cancels the server's
// base context — long-lived streaming handlers (the forensics SSE
// endpoint) watch their request context and exit on cancellation, which a
// plain Shutdown would otherwise wait on forever — then calls Shutdown
// with a short deadline so regular scrapes in flight finish their
// responses, and only hard-closes connections that outlive the deadline.
// It reports the first real error from either the serve loop or the
// shutdown itself (http.ErrServerClosed is the normal exit, not an error).
func ServeOps(addr string, h http.Handler) (string, func() error, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	srv := &http.Server{
		Handler:     h,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()
	shutdown := func() error {
		cancel()
		ctx, done := context.WithTimeout(context.Background(), opsDrainTimeout)
		defer done()
		err := srv.Shutdown(ctx)
		if err != nil {
			// Deadline expired with connections still open (a scraper
			// mid-download, a browser holding the stream past cancellation):
			// hard-close the stragglers, but the drain failure is the error
			// worth reporting.
			_ = srv.Close()
		}
		if serveErr := <-served; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
			err = serveErr
		}
		return err
	}
	return lis.Addr().String(), shutdown, nil
}
