package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewOpsMux assembles the unified operator endpoint: Prometheus metrics at
// /metrics and the standard pprof handlers under /debug/pprof/. Callers
// mount further surfaces (the forensics JSON handlers under /forensics/)
// on the returned mux, so one listener serves the whole ops plane.
func NewOpsMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w) // client went away; nothing to do
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RegisterPoolGauges exposes the process-global tensor worker pool as
// scrape-time gauges: the configured width and the helper goroutines
// currently running. Callers pass the accessors (tensor.Workers,
// tensor.InUse) so this package stays free of kernel-layer imports.
func RegisterPoolGauges(reg *Registry, workers, inUse func() int) {
	if reg == nil {
		return
	}
	if workers != nil {
		reg.GaugeFunc("tensor_pool_workers",
			"Configured kernel worker-pool width (SetWorkers/-threads).",
			func() float64 { return float64(workers()) })
	}
	if inUse != nil {
		reg.GaugeFunc("tensor_pool_in_use",
			"Kernel helper goroutines currently running (pool occupancy).",
			func() float64 { return float64(inUse()) })
	}
}

// ServeOps serves h on addr (e.g. ":9090", or ":0" for an ephemeral port)
// in a background goroutine for the lifetime of the run. It returns the
// bound address and a shutdown function.
func ServeOps(addr string, h http.Handler) (string, func() error, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(lis) }()
	return lis.Addr().String(), srv.Close, nil
}
