package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// snapshotSeries is the JSON shape of one (label set, instrument) pair.
// Exactly one of Value and the histogram triple is populated, matching the
// instrument's kind. Labels carries the rendered Prometheus label set
// (`{k="v",…}`, empty for the bare series) so the dashboard displays the
// series exactly as a scraper would see it.
type snapshotSeries struct {
	Labels string `json:"labels,omitempty"`
	// Value is the counter/gauge reading (gauge funcs sampled now).
	Value *float64 `json:"value,omitempty"`
	// Count/Sum summarize a histogram: observations and total seconds.
	Count *int64   `json:"count,omitempty"`
	Sum   *float64 `json:"sum,omitempty"`
}

// snapshotFamily is the JSON shape of one metric name.
type snapshotFamily struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []snapshotSeries `json:"series"`
}

// WriteJSON renders every registered metric as one JSON document — the
// machine surface behind the dashboard's fleet panel, which needs typed
// values rather than re-parsing the Prometheus text format in the browser.
// Output order is deterministic (families by name, series by label set),
// mirroring WritePrometheus.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := struct {
		Families []snapshotFamily `json:"families"`
	}{Families: []snapshotFamily{}}
	if r != nil {
		r.mu.Lock()
		names := append([]string(nil), r.names...)
		sort.Strings(names)
		for _, name := range names {
			fam := r.families[name]
			sf := snapshotFamily{Name: name, Type: fam.typ, Help: fam.help}
			keys := append([]string(nil), fam.keys...)
			sort.Strings(keys)
			for _, key := range keys {
				ss := snapshotSeries{Labels: key}
				switch v := fam.series[key].(type) {
				case *Counter:
					f := float64(v.Value())
					ss.Value = &f
				case *Gauge:
					f := float64(v.Value())
					ss.Value = &f
				case gaugeFn:
					f := v()
					ss.Value = &f
				case *Histogram:
					n, s := v.Count(), v.SumSeconds()
					ss.Count, ss.Sum = &n, &s
				}
				sf.Series = append(sf.Series, ss)
			}
			out.Families = append(out.Families, sf)
		}
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
