package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("fl_rounds_total", "Completed rounds.", Label{Key: "federation", Value: "alpha"})
	c.Inc()
	c.Add(2)
	g := reg.Gauge("queue_depth", "Pending joins.")
	g.Set(7)
	g.Add(-3)
	h := reg.Histogram("fl_round_seconds", "Round duration.")
	h.Observe(1500 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	reg.GaugeFunc("pool_width", "Workers.", func() float64 { return 4 })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE fl_rounds_total counter",
		`fl_rounds_total{federation="alpha"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 4",
		"# TYPE fl_round_seconds histogram",
		`fl_round_seconds_bucket{le="+Inf"} 2`,
		"fl_round_seconds_count 2",
		"pool_width 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Bucket counts are cumulative: 1.5ms lands at le=2.048ms? No —
	// bounds are 2^i µs: 1.5ms ≤ 2.048ms (i=11), 3ms ≤ 4.096ms (i=12).
	if !strings.Contains(out, `fl_round_seconds_bucket{le="0.002048"} 1`) {
		t.Errorf("1.5ms observation not in the 2.048ms bucket:\n%s", out)
	}
	if !strings.Contains(out, `fl_round_seconds_bucket{le="0.004096"} 2`) {
		t.Errorf("3ms observation not cumulative in the 4.096ms bucket:\n%s", out)
	}
	// Every line must be a comment or "name{labels} value" — a cheap
	// validity proxy for the exposition format.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "")
	b := reg.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registration returned a different instrument")
	}
	labelled := reg.Counter("x_total", "", Label{Key: "k", Value: "v"})
	if labelled == a {
		t.Fatal("distinct label sets must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two types must panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a", "")
	g := reg.Gauge("b", "")
	h := reg.Histogram("c", "")
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	reg.GaugeFunc("d", "", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry must render nothing: %q, %v", b.String(), err)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", Label{Key: "v", Value: "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped: %s", b.String())
	}
}

func TestTracerChromeExport(t *testing.T) {
	tr := NewTracer(0)
	fed := tr.Track("federation/alpha")
	sp := tr.Start(fed, "round")
	tr.Start(fed, "select").End()
	sp.End()
	tr.Emit(tr.Track("host"), "drain", Nanos(), 0)

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	var complete, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["ts"].(float64); !ok {
				t.Errorf("complete event without numeric ts: %v", ev)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	if meta != 3 { // process_name + two thread_names
		t.Errorf("metadata events = %d, want 3", meta)
	}
}

func TestTracerJournalExport(t *testing.T) {
	tr := NewTracer(0)
	tr.Start(tr.Track("engine"), "eval").End()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := tr.WriteJournal(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(string(data))
	if !strings.Contains(line, `"name":"eval"`) || !strings.Contains(line, `"track":"engine"`) {
		t.Errorf("journal line missing span fields: %s", line)
	}
}

func TestTracerBound(t *testing.T) {
	tr := NewTracer(2)
	track := tr.Track("t")
	for i := 0; i < 5; i++ {
		tr.Start(track, "s").End()
	}
	if tr.Len() != 2 {
		t.Errorf("buffered = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
}

// TestDisabledTelemetryZeroAlloc proves the zero-cost-when-disabled
// contract at the instrument layer: the full per-round sequence the engine
// executes against a nil EngineTelemetry — round span, every phase span,
// the byte counters, the defense distance hook — allocates nothing.
func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	var tel *EngineTelemetry
	ClearDistanceHook()
	allocs := testing.AllocsPerRun(100, func() {
		round := tel.Round()
		for p := Phase(0); p < phaseCount; p++ {
			sp := tel.Phase(p)
			sp.End()
		}
		DistanceSpan().End()
		tel.AddBytesIn(1024)
		tel.AddBytesOut(2048)
		tel.AddFrames(8)
		round.End()
	})
	if allocs != 0 {
		t.Errorf("disabled round instrumentation allocates %v times, want 0", allocs)
	}

	var sweep *SweepTelemetry
	allocs = testing.AllocsPerRun(100, func() {
		sweep.Cell("cell").End()
		sweep.Claim(false)
		sweep.Conflict()
		sweep.Adopt()
		_ = sweep.Cells()
		_ = sweep.Conflicts()
	})
	if allocs != 0 {
		t.Errorf("disabled sweep instrumentation allocates %v times, want 0", allocs)
	}
}

// TestConcurrentEmission exercises the registry and tracer from many
// goroutines (run under -race in CI's telemetry leg).
func TestConcurrentEmission(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fed := []string{"alpha", "beta"}[g%2]
			tel := NewEngineTelemetry(reg, tr, fed)
			for i := 0; i < 200; i++ {
				round := tel.Round()
				sp := tel.Phase(PhaseCollect)
				tel.AddBytesIn(64)
				sp.End()
				round.End()
			}
		}(g)
	}
	wg.Wait()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fl_rounds_total{federation="alpha"} 800`,
		`fl_rounds_total{federation="beta"} 800`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
	if tr.Len() != 8*200*2 {
		t.Errorf("span count = %d, want %d", tr.Len(), 8*200*2)
	}
}

func TestEngineTelemetryHistograms(t *testing.T) {
	reg := NewRegistry()
	tel := NewEngineTelemetry(reg, nil, "")
	sp := tel.Phase(PhaseEval)
	sp.End()
	tel.Round().End()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `fl_phase_seconds_count{phase="eval"} 1`) {
		t.Errorf("eval phase histogram not recorded:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "fl_round_seconds_count 1") {
		t.Errorf("round histogram not recorded:\n%s", b.String())
	}
}

func TestDistanceHook(t *testing.T) {
	reg := NewRegistry()
	SetDistanceHook(reg, nil)
	defer ClearDistanceHook()
	DistanceSpan().End()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "defense_distance_seconds_count 1") {
		t.Errorf("distance hook not recorded:\n%s", b.String())
	}
}
