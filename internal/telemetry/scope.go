package telemetry

import "sync/atomic"

// Phase enumerates the engine's fixed round phases. The collect phase
// covers the transport round-trip — broadcast, client training and codec
// decode — for both the in-process simulator and the socket server; the
// distance-matrix geometry inside robust aggregation is reported
// separately through the defense hook (DistanceSpan).
type Phase int

const (
	PhaseSelect Phase = iota
	PhaseCollect
	PhaseAttack
	PhaseEncode
	PhaseAggregate
	PhaseServerOpt
	PhaseEval
	PhaseCheckpoint
	phaseCount
)

// phaseNames are the phase label values and span names.
var phaseNames = [phaseCount]string{
	"select", "collect", "attack", "encode",
	"aggregate", "serveropt", "eval", "checkpoint",
}

// Name returns the phase's label value.
func (p Phase) Name() string {
	if p < 0 || p >= phaseCount {
		return "unknown"
	}
	return phaseNames[p]
}

// EngineTelemetry bundles one federation's engine instruments: the round
// counter and duration histogram, one duration histogram per phase, and
// the codec byte counters, all under an optional federation label. Methods
// are nil-safe and the enabled hot path performs only atomic operations,
// so the engine threads one optional pointer with no conditionals and no
// allocation when disabled.
type EngineTelemetry struct {
	tracer *Tracer
	track  int32

	rounds   *Counter
	roundDur *Histogram
	phaseDur [phaseCount]*Histogram

	bytesIn  *Counter
	bytesOut *Counter
	frames   *Counter
}

// NewEngineTelemetry registers one federation's engine instruments on reg
// (labelled federation="<id>" when id is non-empty) and binds its spans to
// tracer (which may be nil for metrics-only operation). A nil reg yields
// metric-less spans; both nil yields nil, the disabled state.
func NewEngineTelemetry(reg *Registry, tracer *Tracer, federation string) *EngineTelemetry {
	if reg == nil && tracer == nil {
		return nil
	}
	var labels []Label
	track := "engine"
	if federation != "" {
		labels = []Label{{Key: "federation", Value: federation}}
		track = "federation/" + federation
	}
	t := &EngineTelemetry{
		tracer: tracer,
		track:  tracer.Track(track),
		rounds: reg.Counter("fl_rounds_total",
			"Completed federated rounds.", labels...),
		roundDur: reg.Histogram("fl_round_seconds",
			"Wall-clock duration of one federated round.", labels...),
		bytesIn: reg.Counter("fl_codec_bytes_in_total",
			"Update payload bytes received (wire size of codec frames; 8B/coord for dense updates).", labels...),
		bytesOut: reg.Counter("fl_codec_bytes_out_total",
			"Model payload bytes broadcast to clients.", labels...),
		frames: reg.Counter("fl_codec_frames_total",
			"Codec frames carried by aggregated updates.", labels...),
	}
	for p := Phase(0); p < phaseCount; p++ {
		t.phaseDur[p] = reg.Histogram("fl_phase_seconds",
			"Wall-clock duration of one engine phase.",
			append([]Label{{Key: "phase", Value: p.Name()}}, labels...)...)
	}
	return t
}

// Round opens the whole-round span and counts the round.
func (t *EngineTelemetry) Round() Span {
	if t == nil {
		return Span{}
	}
	t.rounds.Inc()
	return Span{tracer: t.tracer, hist: t.roundDur, name: "round", track: t.track, start: Nanos()}
}

// Phase opens one engine-phase span.
func (t *EngineTelemetry) Phase(p Phase) Span {
	if t == nil {
		return Span{}
	}
	return Span{tracer: t.tracer, hist: t.phaseDur[p], name: p.Name(), track: t.track, start: Nanos()}
}

// AddBytesIn counts received update payload bytes.
func (t *EngineTelemetry) AddBytesIn(n int) {
	if t != nil {
		t.bytesIn.Add(int64(n))
	}
}

// AddBytesOut counts broadcast model payload bytes.
func (t *EngineTelemetry) AddBytesOut(n int) {
	if t != nil {
		t.bytesOut.Add(int64(n))
	}
}

// AddFrames counts codec frames seen by aggregation.
func (t *EngineTelemetry) AddFrames(n int) {
	if t != nil {
		t.frames.Add(int64(n))
	}
}

// distanceHook is the process-global instrument for the defense layer's
// pairwise distance-matrix computation. The robust aggregators are built
// without any telemetry seam (they are pure functions of the updates), so
// the one shared geometry routine reports through this hook instead of a
// threaded parameter. Set/Clear are cold-path; the disabled read is one
// atomic load.
type distanceHook struct {
	tracer *Tracer
	track  int32
	dur    *Histogram
}

var distHook atomic.Pointer[distanceHook]

// SetDistanceHook routes defense distance-matrix spans to reg/tracer.
// Process-global: with co-hosted federations the hook reports the shared
// defense layer, not one tenant. Pair with ClearDistanceHook.
func SetDistanceHook(reg *Registry, tracer *Tracer) {
	if reg == nil && tracer == nil {
		ClearDistanceHook()
		return
	}
	distHook.Store(&distanceHook{
		tracer: tracer,
		track:  tracer.Track("defense"),
		dur: reg.Histogram("defense_distance_seconds",
			"Wall-clock duration of one pairwise distance-matrix computation."),
	})
}

// ClearDistanceHook disables the defense distance-matrix instrument.
func ClearDistanceHook() { distHook.Store(nil) }

// DistanceSpan opens a distance-matrix span, or an inert one when no hook
// is set (one atomic load, no allocation).
func DistanceSpan() Span {
	h := distHook.Load()
	if h == nil {
		return Span{}
	}
	return Span{tracer: h.tracer, hist: h.dur, name: "distance-matrix", track: h.track, start: Nanos()}
}

// SweepTelemetry bundles one sweep worker's instruments: executed-cell
// count and duration, and the lease-protocol counters (claims, conflicts,
// reclaims, adoptions) under a worker label. Nil-safe throughout.
type SweepTelemetry struct {
	tracer *Tracer
	track  int32

	cells     *Counter
	cellDur   *Histogram
	claims    *Counter
	conflicts *Counter
	reclaims  *Counter
	adopted   *Counter
}

// NewSweepTelemetry registers one worker's sweep instruments (labelled
// worker="<owner>" when owner is non-empty).
func NewSweepTelemetry(reg *Registry, tracer *Tracer, owner string) *SweepTelemetry {
	if reg == nil && tracer == nil {
		return nil
	}
	var labels []Label
	track := "sweep"
	if owner != "" {
		labels = []Label{{Key: "worker", Value: owner}}
		track = "sweep/" + owner
	}
	return &SweepTelemetry{
		tracer: tracer,
		track:  tracer.Track(track),
		cells: reg.Counter("sweep_cells_total",
			"Grid cells executed by this worker.", labels...),
		cellDur: reg.Histogram("sweep_cell_seconds",
			"Wall-clock duration of one executed grid cell.", labels...),
		claims: reg.Counter("sweep_lease_claims_total",
			"Successful lease claims (fresh cells this worker took).", labels...),
		conflicts: reg.Counter("sweep_lease_conflicts_total",
			"Claim attempts lost to a live foreign lease.", labels...),
		reclaims: reg.Counter("sweep_lease_reclaims_total",
			"Leases reclaimed from workers whose epoch provably stalled.", labels...),
		adopted: reg.Counter("sweep_cells_adopted_total",
			"Cells adopted from results other workers recorded.", labels...),
	}
}

// Cell opens the span for one executed grid cell and counts it.
func (t *SweepTelemetry) Cell(name string) Span {
	if t == nil {
		return Span{}
	}
	t.cells.Inc()
	return Span{tracer: t.tracer, hist: t.cellDur, name: name, track: t.track, start: Nanos()}
}

// Claim counts a successful lease claim; stolen reports a reclaim from a
// provably stalled holder.
func (t *SweepTelemetry) Claim(stolen bool) {
	if t == nil {
		return
	}
	t.claims.Inc()
	if stolen {
		t.reclaims.Inc()
		t.tracer.Emit(t.track, "lease-reclaim", Nanos(), 0)
	}
}

// Conflict counts a claim attempt lost to a live foreign lease.
func (t *SweepTelemetry) Conflict() {
	if t == nil {
		return
	}
	t.conflicts.Inc()
}

// Adopt counts a cell adopted from another worker's recorded result.
func (t *SweepTelemetry) Adopt() {
	if t == nil {
		return
	}
	t.adopted.Inc()
	t.tracer.Emit(t.track, "adopt", Nanos(), 0)
}

// Cells returns the executed-cell count (0 on nil).
func (t *SweepTelemetry) Cells() int64 {
	if t == nil {
		return 0
	}
	return t.cells.Value()
}

// Conflicts returns the lease-conflict count (0 on nil).
func (t *SweepTelemetry) Conflicts() int64 {
	if t == nil {
		return 0
	}
	return t.conflicts.Value()
}
