package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one metric dimension (e.g. federation="alpha",
// worker="host-1234"). Labels are resolved once, at instrument
// registration; the hot path never formats or hashes them.
type Label struct {
	Key, Value string
}

// Registry holds the process's metric instruments and renders them in
// Prometheus text exposition format. Registration (Counter, Gauge,
// Histogram, GaugeFunc) takes a lock and may allocate; the returned
// instruments are updated with single atomic operations. A nil *Registry
// hands out nil instruments, whose methods no-op, so callers thread one
// optional registry through without conditionals.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// family groups the series of one metric name.
type family struct {
	name, help, typ string
	series          map[string]any // rendered label set → instrument
	keys            []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// instrument resolves (or creates) the series for name+labels, enforcing
// one metric type per name. Instrument identity is (name, label set):
// re-registering returns the existing instrument, so co-hosted federations
// and repeated runs share series instead of clobbering them.
func (r *Registry) instrument(name, help, typ string, labels []Label, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]any)}
		r.families[name] = fam
		r.names = append(r.names, name)
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, fam.typ, typ))
	}
	key := renderLabels(labels)
	if inst, ok := fam.series[key]; ok {
		return inst
	}
	inst := mk()
	fam.series[key] = inst
	fam.keys = append(fam.keys, key)
	return inst
}

// Counter returns the monotonically increasing counter for name+labels,
// registering it on first use. Nil receiver returns nil (a no-op counter).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.instrument(name, help, "counter", labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.instrument(name, help, "gauge", labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the latency histogram for name+labels, registering it
// on first use. Buckets are fixed and log-scaled (powers of two from 1µs
// to ~134s), so registration never allocates per-observation state and
// two histograms are always mergeable.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.instrument(name, help, "histogram", labels, func() any { return &Histogram{} }).(*Histogram)
}

// GaugeFunc registers a gauge whose value is sampled at scrape time —
// for occupancy readings owned elsewhere (e.g. the tensor worker pool).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.instrument(name, help, "gauge", labels, func() any { return gaugeFn(fn) })
}

type gaugeFn func() float64

// Counter is a monotonically increasing metric. The zero value is ready;
// a nil *Counter no-ops.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative; counters never decrease).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready; a nil
// *Gauge no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed log-scaled latency bucket count: upper bounds
// are 2^i microseconds for i = 0..histBuckets-1 (1µs … ~134s), plus the
// implicit +Inf bucket.
const histBuckets = 28

// Histogram is a fixed-bucket latency histogram. Observations are single
// atomic increments; the bucket layout never changes, so the hot path
// allocates nothing. The zero value is ready; a nil *Histogram no-ops.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64 // per-bucket counts; last is +Inf
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one duration given in nanoseconds.
func (h *Histogram) ObserveNanos(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	idx := histBuckets // +Inf
	for i := 0; i < histBuckets; i++ {
		if ns <= int64(1000)<<i {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumSeconds returns the sum of all observed durations in seconds.
func (h *Histogram) SumSeconds() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNs.Load()) * 1e-9
}

// renderLabels renders a sorted {k="v",…} series key ("" for no labels).
// Values are escaped per the Prometheus text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// withLabel splices an extra label (histograms' le) into a rendered series
// key.
func withLabel(key, extra string) string {
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// bucketLE renders bucket i's upper bound (2^i microseconds) in seconds
// as an exact decimal string — powers of two of 10^-6 are not binary-float
// representable, so formatting through float64 would print rounding noise.
func bucketLE(i int) string {
	us := uint64(1) << uint(i)
	sec := us / 1_000_000
	frac := us % 1_000_000
	if frac == 0 {
		return strconv.FormatUint(sec, 10)
	}
	return strings.TrimRight(fmt.Sprintf("%d.%06d", sec, frac), "0")
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Output is deterministic: families
// sorted by name, series by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	for _, name := range names {
		fam := r.families[name]
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, fam.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.typ); err != nil {
			return err
		}
		keys := append([]string(nil), fam.keys...)
		sort.Strings(keys)
		for _, key := range keys {
			if err := writeSeries(w, name, key, fam.series[key]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name, key string, inst any) error {
	switch v := inst.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, key, v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, key, v.Value())
		return err
	case gaugeFn:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, key, strconv.FormatFloat(v(), 'g', -1, 64))
		return err
	case *Histogram:
		cum := int64(0)
		for i := 0; i <= histBuckets; i++ {
			cum += v.buckets[i].Load()
			le := "+Inf"
			if i < histBuckets {
				le = bucketLE(i)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(key, `le="`+le+`"`), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, key, strconv.FormatFloat(v.SumSeconds(), 'g', -1, 64)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, key, v.Count())
		return err
	default:
		return fmt.Errorf("telemetry: unknown instrument type %T", inst)
	}
}
