// Package telemetry is the reproduction's zero-dependency runtime
// observability layer: per-phase spans over the federated round loop, an
// atomic metrics registry exposed in Prometheus text format, and trace
// export to Chrome trace-event JSON and to a JSONL journal.
//
// Two disciplines govern every instrument in this package:
//
//  1. Observation never changes results. Spans and metrics read the wall
//     clock and atomic counters only; they never touch an engine RNG
//     stream, reorder an update sequence, or feed a value into anything
//     runKey-relevant. Fixed-seed runs are bit-identical with telemetry on
//     or off (TestTelemetryOnOffBitIdentical, on both transports).
//
//  2. Disabled telemetry is free. Every hot-path type is nil-safe — a nil
//     *EngineTelemetry, *Tracer, *Counter or *Histogram no-ops — and the
//     span type is a value, so an uninstrumented round performs zero
//     additional allocations (TestDisabledTelemetryZeroAlloc).
//
// Wall-clock reads in instrumented packages are corralled here: fllint's
// telemetryclock analyzer forbids direct time.Now/time.Since calls in the
// engine/defense/codec hot paths, so every clock value stays inside
// telemetry state where it can never reach a seed, a tie-breaker or a run
// key.
package telemetry

import "time"

// epoch anchors every span timestamp: all nanosecond readings are
// monotonic offsets from process start, so traces are immune to wall-clock
// adjustments and cheap to subtract.
var epoch = time.Now()

// Clock returns the current wall-clock time — the sanctioned clock read
// for instrumented hot paths (see the package comment and fllint's
// telemetryclock analyzer).
func Clock() time.Time { return time.Now() }

// Nanos returns monotonic nanoseconds since process start, the time base
// of every span. Use it to timestamp an operation whose begin and end are
// observed in different stack frames (e.g. an admission-queue wait).
func Nanos() int64 { return time.Since(epoch).Nanoseconds() }
