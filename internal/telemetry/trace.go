package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/persist"
)

// Tracer collects spans into a bounded in-memory buffer for export after
// the run: Chrome trace-event JSON (chrome://tracing, Perfetto) and the
// repro's JSONL journal format (persist.OpenJournalStream). Emission is a
// mutex-guarded append of one small struct — safe from concurrent
// federations and lease workers — and the buffer never grows past its
// bound: excess spans are counted in Dropped rather than silently eating
// memory on a long host. A nil *Tracer no-ops everywhere.
type Tracer struct {
	mu      sync.Mutex
	tracks  []string
	events  []event
	max     int
	dropped int64
}

// event is one completed span: ts/dur are monotonic nanoseconds since
// process start (see Nanos).
type event struct {
	name    string
	track   int32
	ts, dur int64
}

// NewTracer returns a tracer bounded to max buffered spans (0 = 1<<20).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = 1 << 20
	}
	return &Tracer{max: max}
}

// Track interns a named track (one row in the trace viewer — a federation,
// a sweep worker, the defense layer) and returns its handle. Interning is
// cold-path; spans carry only the int32. A nil tracer returns 0.
func (t *Tracer) Track(name string) int32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, n := range t.tracks {
		if n == name {
			return int32(i)
		}
	}
	t.tracks = append(t.tracks, name)
	return int32(len(t.tracks) - 1)
}

// Start opens a span on track. The returned Span is a value — ending it
// allocates nothing beyond the tracer's own buffer append — and a span
// started on a nil tracer is inert.
func (t *Tracer) Start(track int32, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tracer: t, name: name, track: track, start: Nanos()}
}

// Emit records a completed span whose begin and end were observed in
// different stack frames (start in monotonic nanoseconds, see Nanos).
func (t *Tracer) Emit(track int32, name string, start, dur int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, event{name: name, track: track, ts: start, dur: dur})
	}
	t.mu.Unlock()
}

// Len returns the number of buffered spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of spans discarded at the buffer bound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// snapshot copies the buffered state for export.
func (t *Tracer) snapshot() ([]string, []event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.tracks...), append([]event(nil), t.events...)
}

// Span is one in-flight measurement. It is a plain value: copying it is
// cheap, the zero value is inert, and End on the zero value no-ops — the
// disabled-telemetry hot path costs one nil check and no allocation.
type Span struct {
	tracer *Tracer
	hist   *Histogram
	name   string
	track  int32
	start  int64
}

// End closes the span, feeding its duration to the attached histogram
// and/or trace buffer.
func (s Span) End() {
	if s.tracer == nil && s.hist == nil {
		return
	}
	dur := Nanos() - s.start
	s.hist.ObserveNanos(dur)
	if s.tracer != nil {
		s.tracer.Emit(s.track, s.name, s.start, dur)
	}
}

// chromeEvent is one Chrome trace-event object: "X" complete events carry
// microsecond ts/dur; "M" metadata events name the pid/tid rows.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the buffered spans as a Chrome trace-event JSON
// array, loadable in chrome://tracing and Perfetto. Tracks become threads
// of one process; timestamps are microseconds since process start.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return nil
	}
	tracks, events := t.snapshot()
	out := make([]chromeEvent, 0, len(events)+len(tracks)+1)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "repro"},
	})
	for i, name := range tracks {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: int32(i),
			Args: map[string]any{"name": name},
		})
	}
	for _, ev := range events {
		out = append(out, chromeEvent{
			Name: ev.name, Ph: "X", PID: 1, TID: ev.track,
			TS: float64(ev.ts) / 1e3, Dur: float64(ev.dur) / 1e3,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// journalSpan is the JSONL trace-journal line payload.
type journalSpan struct {
	Track   string `json:"track"`
	Name    string `json:"name"`
	StartNs int64  `json:"startNs"`
	DurNs   int64  `json:"durNs"`
}

// WriteJournal appends the buffered spans to a JSONL trace journal at path
// via persist's streaming journal mode (O(1) memory, one fsync at close).
// Keys are span.<seq>, in emission order.
func (t *Tracer) WriteJournal(path string) error {
	if t == nil {
		return nil
	}
	tracks, events := t.snapshot()
	j, err := persist.OpenJournalStream(path)
	if err != nil {
		return fmt.Errorf("telemetry: trace journal: %w", err)
	}
	for i, ev := range events {
		track := ""
		if int(ev.track) < len(tracks) {
			track = tracks[ev.track]
		}
		if err := j.Append(fmt.Sprintf("span.%08d", i), journalSpan{
			Track: track, Name: ev.name, StartNs: ev.ts, DurNs: ev.dur,
		}); err != nil {
			_ = j.Close()
			return fmt.Errorf("telemetry: trace journal: %w", err)
		}
	}
	if err := j.Close(); err != nil {
		return fmt.Errorf("telemetry: trace journal: %w", err)
	}
	return nil
}
