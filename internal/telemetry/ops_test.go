package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestOpsMuxServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "Liveness.").Inc()
	RegisterPoolGauges(reg, func() int { return 4 }, func() int { return 1 })

	bound, shutdown, err := ServeOps("127.0.0.1:0", NewOpsMux(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()

	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	for _, want := range []string{"up_total 1", "tensor_pool_workers 4", "tensor_pool_in_use 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, body)
		}
	}

	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}
