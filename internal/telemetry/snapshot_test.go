package telemetry

// JSON snapshot tests: the typed /metrics.json surface behind the
// dashboard's fleet panel must render every instrument kind with
// deterministic ordering, and ServeOps must drain gracefully — a blocked
// streaming handler sees the base context cancel instead of a hard close.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWriteJSONSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cells_total", "Completed cells.").Add(3)
	reg.Gauge("pool_in_use", "Busy workers.", Label{"worker", "w1"}).Set(2)
	reg.Gauge("pool_in_use", "Busy workers.", Label{"worker", "w0"}).Set(5)
	reg.GaugeFunc("threads", "Pool width.", func() float64 { return 8 })
	h := reg.Histogram("cell_seconds", "Cell wall time.")
	h.Observe(1500 * time.Millisecond)
	h.Observe(500 * time.Millisecond)

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Families []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Labels string   `json:"labels,omitempty"`
				Value  *float64 `json:"value,omitempty"`
				Count  *int64   `json:"count,omitempty"`
				Sum    *float64 `json:"sum,omitempty"`
			} `json:"series"`
		} `json:"families"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if len(snap.Families) != 4 {
		t.Fatalf("snapshot has %d families, want 4:\n%s", len(snap.Families), sb.String())
	}
	// Families sort by name; labeled series sort by rendered label set.
	names := make([]string, len(snap.Families))
	for i, f := range snap.Families {
		names[i] = f.Name
	}
	if names[0] != "cell_seconds" || names[1] != "cells_total" || names[2] != "pool_in_use" || names[3] != "threads" {
		t.Fatalf("family order = %v", names)
	}
	hist := snap.Families[0]
	if hist.Type != "histogram" || *hist.Series[0].Count != 2 || *hist.Series[0].Sum != 2 {
		t.Fatalf("histogram series = %+v", hist)
	}
	if *snap.Families[1].Series[0].Value != 3 {
		t.Fatalf("counter value = %v", *snap.Families[1].Series[0].Value)
	}
	gauges := snap.Families[2]
	if len(gauges.Series) != 2 || !strings.Contains(gauges.Series[0].Labels, `worker="w0"`) {
		t.Fatalf("labeled gauge series = %+v (want w0 before w1)", gauges.Series)
	}
	if *gauges.Series[0].Value != 5 || *gauges.Series[1].Value != 2 {
		t.Fatalf("gauge values = %v/%v", *gauges.Series[0].Value, *gauges.Series[1].Value)
	}
	if *snap.Families[3].Series[0].Value != 8 {
		t.Fatalf("gauge-func value = %v", *snap.Families[3].Series[0].Value)
	}

	// Deterministic: two renders are byte-identical.
	var sb2 strings.Builder
	if err := reg.WriteJSON(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatal("WriteJSON output not deterministic")
	}

	// A nil registry still renders a valid empty document.
	var sbNil strings.Builder
	if err := (*Registry)(nil).WriteJSON(&sbNil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sbNil.String()) != `{"families":[]}` {
		t.Fatalf("nil registry renders %q", sbNil.String())
	}
}

func TestOpsMuxServesMetricsJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "Liveness.").Inc()
	bound, shutdown, err := ServeOps("127.0.0.1:0", NewOpsMux(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	resp, err := http.Get("http://" + bound + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control %q", cc)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"up_total"`) {
		t.Fatalf("missing counter in %s", body)
	}
}

// TestServeOpsGracefulShutdown pins the drain contract: a streaming handler
// blocked on its request context must be released by shutdown (via the
// server's base context) and the whole drain must finish well inside the
// deadline, returning nil rather than a spurious close error.
func TestServeOpsGracefulShutdown(t *testing.T) {
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-r.Context().Done() // exactly how the SSE handler waits
	})
	bound, shutdown, err := ServeOps("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Get("http://" + bound + "/hang")
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never entered")
	}
	start := time.Now()
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown with a draining subscriber: %v", err)
	}
	if elapsed := time.Since(start); elapsed > opsDrainTimeout {
		t.Fatalf("drain took %v, deadline %v", elapsed, opsDrainTimeout)
	}
	// The listener is really gone.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+bound+"/metrics", nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("ops endpoint still serving after shutdown")
	}
}
