package analysis

import (
	"strconv"
	"strings"
)

// zeroDepPackages are the packages that must import only the standard
// library. internal/dashboard is the embedded operator UI: it rides every
// binary that mounts the ops mux, so a stray import of a repo-internal
// package would drag engine code into thin servers (and an external module
// would break the dependency-free go.mod). Matching is by package name so
// analysistest fixtures exercise the same predicate as the real tree.
var zeroDepPackages = map[string]bool{
	"dashboard": true,
}

// ZeroDep forbids non-stdlib imports in the zero-dependency packages.
var ZeroDep = &Analyzer{
	Name: "zerodep",
	Doc: `keep the embedded dashboard free of non-stdlib imports

internal/dashboard is a pure asset shell: go:embed-ed HTML/JS plus the
config handler, importable by every binary without pulling the engine in.
An import of any repro-internal package couples the UI to engine code (and
invites an import cycle with the forensics/telemetry packages that mount
it); an external module would break the repo's dependency-free go.mod.
Standard-library imports only — data flows to the page over HTTP routes,
never through Go imports.`,
	Run: runZeroDep,
}

// stdlibImport reports whether path names a standard-library package: no
// dot in the first path segment (the module-path convention the go tool
// itself uses) and not a path in this repo's module.
func stdlibImport(path string) bool {
	if path == "repro" || strings.HasPrefix(path, "repro/") {
		return false
	}
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}

func runZeroDep(pass *Pass) error {
	if !zeroDepPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !stdlibImport(path) {
				pass.Reportf(imp.Pos(),
					"package %s must import only the standard library; %q couples the embedded UI to non-stdlib code",
					pass.Pkg.Name(), path)
			}
		}
	}
	return nil
}
