package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoClean is the meta-invariant: the whole repository passes its own
// analyzer suite. Every deliberate violation must carry a reasoned
// //lint:allow, so this test failing means either a real regression or an
// undocumented exemption.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("load repo: no packages")
	}
	diags := analysis.Run(pkgs, analysis.All())
	for _, d := range diags {
		t.Errorf("%s: %s: %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		t.Fatalf("fllint reports %d violation(s) on the repository", len(diags))
	}
}
