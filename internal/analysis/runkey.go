package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// RunKey machine-checks the run-store key-stability contract on
// experiment.Config: runKey hashes the JSON of a normalized Config, so the
// struct's serialized shape IS the identity of every journaled run. The
// contract has three clauses:
//
//  1. The untagged field prefix is the frozen legacy shape — pre-engine
//     journals hash it byte-for-byte. Every field added after the first
//     json-tagged field must carry ",omitempty" (zero default ⇒ legacy
//     configs marshal unchanged) or `json:"-"` (never serialized).
//  2. A tag without omitempty (and not "-") changes every legacy key the
//     moment the field exists, breaking -resume against old journals.
//  3. Every tagged field must be reachable from Normalize or cleanKey:
//     omitempty only preserves keys if the default canonicalizes to the
//     zero value, and that canonicalization (or an explicit keying/validity
//     decision) lives in those two functions.
var RunKey = &Analyzer{
	Name: "runkey",
	Doc: `enforce run-store key stability on experiment.Config

Every field of experiment.Config added after the frozen legacy prefix must
carry json:",omitempty" or json:"-", and every tagged field must be
referenced from Normalize or cleanKey, so a new sweep axis can never
silently re-key legacy journals or skip zero-default canonicalization.`,
	Run: runRunKey,
}

func runRunKey(pass *Pass) error {
	if pass.Pkg.Name() != "experiment" {
		return nil
	}
	cfg := findStruct(pass, "Config")
	if cfg == nil {
		return nil
	}
	mentioned := normalizeMentions(pass)
	seenTagged := false
	for _, field := range cfg.Fields.List {
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(),
				"embedded field in experiment.Config: promoted fields make the serialized key shape implicit; declare fields explicitly")
			continue
		}
		tag := ""
		hasTag := false
		if field.Tag != nil {
			raw := strings.Trim(field.Tag.Value, "`")
			tag, hasTag = reflect.StructTag(raw).Lookup("json")
		}
		for _, name := range field.Names {
			if !name.IsExported() {
				pass.Reportf(name.Pos(),
					"unexported field %s in experiment.Config never serializes: two configs differing in it would collide on one run-store key", name.Name)
				continue
			}
			if !hasTag {
				if seenTagged {
					pass.Reportf(name.Pos(),
						"field %s extends experiment.Config without a json tag: new fields must carry json:\",omitempty\" or json:\"-\" so legacy run-store keys survive", name.Name)
				}
				// Untagged legacy prefix: frozen shape, nothing to check.
				continue
			}
			parts := strings.Split(tag, ",")
			skip := parts[0] == "-" && len(parts) == 1
			omitempty := false
			for _, opt := range parts[1:] {
				if opt == "omitempty" {
					omitempty = true
				}
			}
			if !skip && !omitempty {
				pass.Reportf(name.Pos(),
					"field %s of experiment.Config is serialized without omitempty: its presence re-keys every legacy config; tag it json:\",omitempty\" or json:\"-\"", name.Name)
			}
			if !mentioned[name.Name] {
				pass.Reportf(name.Pos(),
					"field %s of experiment.Config is not reachable from Normalize or cleanKey: zero-default canonicalization (and the baseline-keying decision) is unverified", name.Name)
			}
		}
		if hasTag {
			seenTagged = true
		}
	}
	return nil
}

// findStruct locates the named struct type's declaration in the package.
func findStruct(pass *Pass, name string) *ast.StructType {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// normalizeMentions collects the Config field names selected anywhere in
// the bodies of Normalize and cleanKey.
func normalizeMentions(pass *Pass) map[string]bool {
	mentioned := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "Normalize" && fd.Name.Name != "cleanKey" {
				continue
			}
			if !receiverIsConfig(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pass.TypesInfo.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				if named, ok := derefNamed(s.Recv()); ok && named.Obj().Name() == "Config" && named.Obj().Pkg() == pass.Pkg {
					mentioned[sel.Sel.Name] = true
				}
				return true
			})
		}
	}
	return mentioned
}

// receiverIsConfig reports whether fd's receiver base type is this
// package's Config.
func receiverIsConfig(pass *Pass, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	named, ok := derefNamed(t)
	return ok && named.Obj().Name() == "Config" && named.Obj().Pkg() == pass.Pkg
}

// derefNamed unwraps pointers and aliases to the underlying named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return named, ok
}
