package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism, "fl")
}

func TestRunKey(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RunKey, "experiment")
}

func TestPoolEscape(t *testing.T) {
	// The arena package itself is exempt (no want comments in tensor);
	// loading it alongside the client asserts that exemption holds.
	analysistest.Run(t, "testdata", analysis.PoolEscape, "tensor", "poolclient")
}

func TestNaNJSON(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NaNJSON, "report")
}

func TestTelemetryClock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.TelemetryClock, "flnet")
}

func TestZeroDep(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ZeroDep, "dashboard")
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != 6 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 6, nil", len(all), err)
	}
	subset, err := analysis.ByName("runkey, nanjson")
	if err != nil || len(subset) != 2 || subset[0].Name != "runkey" || subset[1].Name != "nanjson" {
		t.Fatalf("ByName(\"runkey, nanjson\") = %v, err %v", subset, err)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") succeeded; want error")
	}
}
