package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one syntax+types unit handed to the analyzers.
type Package struct {
	PkgPath string
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching the patterns
// (e.g. "./..."), resolving imports through the compiler's export data —
// the same substrate `go vet` runs on, so loading works offline and never
// re-type-checks dependencies from source. All returned packages share one
// FileSet.
//
// Analyzers see each target package's syntax; dependencies contribute
// types only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=Dir,ImportPath,Name,Export,GoFiles,ImportMap,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var targets []*listedPackage
	exports := map[string]string{}
	importMaps := map[string]map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: go list decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.ImportMap) > 0 {
			importMaps[p.ImportPath] = p.ImportMap
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Name == "main" && len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, t, importMaps[t.ImportPath])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// typeCheck parses and checks one listed package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage, importMap map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: &mappedImporter{base: imp, m: importMap},
		Error:    func(error) {}, // collect via the returned error below
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath: lp.ImportPath,
		Name:    tpkg.Name(),
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// mappedImporter applies a package's ImportMap (vendoring, test rewrites)
// before delegating to the shared export-data importer.
type mappedImporter struct {
	base types.Importer
	m    map[string]string
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.base.Import(path)
}

// exportImporter resolves import paths to compiler export data files. The
// path→file table usually comes from one `go list -export -deps` run; any
// miss (e.g. a fixture importing a stdlib package the target set never
// touched) is resolved by a lazy per-path `go list -export` call.
type exportImporter struct {
	mu      sync.Mutex
	exports map[string]string
	gc      types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", ei.lookup).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.gc.ImportFrom(path, "", 0)
}

func (ei *exportImporter) lookup(path string) (io.ReadCloser, error) {
	ei.mu.Lock()
	file, ok := ei.exports[path]
	ei.mu.Unlock()
	if !ok {
		found, err := listExport(path)
		if err != nil {
			return nil, err
		}
		ei.mu.Lock()
		ei.exports[path] = found
		ei.mu.Unlock()
		file = found
	}
	return os.Open(file)
}

// listExport resolves one import path's export data via the go command.
func listExport(path string) (string, error) {
	cmd := exec.Command("go", "list", "-e", "-export", "-json=ImportPath,Export,Error", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go list -export %s: %v\n%s", path, err, stderr.String())
	}
	var p listedPackage
	if err := json.Unmarshal(out, &p); err != nil {
		return "", fmt.Errorf("analysis: go list -export %s: %v", path, err)
	}
	if p.Error != nil {
		return "", fmt.Errorf("analysis: %s: %s", path, p.Error.Err)
	}
	if p.Export == "" {
		return "", fmt.Errorf("analysis: no export data for %q", path)
	}
	return p.Export, nil
}

// NewDepImporter returns an importer backed by the compiler's export
// data, resolving every path lazily through the go command. It serves
// tools (the analysistest harness) that type-check sources living outside
// the module's package graph but still import stdlib packages.
func NewDepImporter(fset *token.FileSet) types.Importer {
	return newExportImporter(fset, map[string]string{})
}

// CheckFiles type-checks one package from an explicit file list and an
// import-path→export-file table — the shape the go vet driver hands a
// vettool. Import paths missing from the table resolve lazily through the
// go command.
func CheckFiles(importPath string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	exports := make(map[string]string, len(packageFile))
	for p, f := range packageFile {
		exports[p] = f
	}
	imp := newExportImporter(fset, exports)
	lp := &listedPackage{ImportPath: importPath, GoFiles: goFiles}
	return typeCheck(fset, imp, lp, importMap)
}

// moduleDir reports the root directory of the main module containing dir,
// so self-check tooling can address the whole repo regardless of cwd.
func moduleDir(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}
