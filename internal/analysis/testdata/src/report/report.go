// Fixture for the nanjson analyzer: package name "report" puts it in the
// NaN-guard scope, so raw float fields reaching json.Marshal /
// MarshalIndent / (*json.Encoder).Encode must be flagged, while the guard
// idioms (*float64 fields, a MarshalJSON owner) stay silent. Also hosts
// the reasonless-allow check: an exemption without a reason is itself a
// violation and exempts nothing.
package report

import (
	"encoding/json"
	"os"
)

type Metrics struct {
	Name string
	Acc  float64
	Err  error `json:"-"`
}

type Guarded struct {
	Name string
	Acc  *float64
}

type Summary struct {
	Mean float64
}

func (s Summary) MarshalJSON() ([]byte, error) {
	m := map[string]*float64{}
	if s.Mean == s.Mean { // NaN guard: NaN != NaN
		m["mean"] = &s.Mean
	}
	return json.Marshal(m)
}

func writeRaw(m Metrics) ([]byte, error) {
	return json.Marshal(m) // want `unguarded float at Acc`
}

func writeSlice(ms []Metrics) error {
	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(ms) // want `unguarded float at \[\]Acc`
}

func writeIndent(byName map[string]Metrics) ([]byte, error) {
	return json.MarshalIndent(byName, "", "  ") // want `unguarded float`
}

func writeNested(pairs []struct{ M Metrics }) ([]byte, error) {
	return json.Marshal(pairs) // want `unguarded float at \[\]M.Acc`
}

// writeGuarded uses the *float64 guard idiom; nothing to flag.
func writeGuarded(g Guarded) ([]byte, error) {
	return json.Marshal(g)
}

// writeSummary marshals a type that owns its NaN discipline.
func writeSummary(s Summary) ([]byte, error) {
	return json.Marshal(s)
}

// writeExempt demonstrates the //lint:allow escape hatch.
func writeExempt(m Metrics) ([]byte, error) {
	return json.Marshal(m) //lint:allow nanjson fixture exercises the exemption path
}

// writeReasonless shows that an allow comment without a reason exempts
// nothing and is itself reported.
func writeReasonless(m Metrics) ([]byte, error) {
	// want+1 `missing a reason`
	//lint:allow nanjson
	return json.Marshal(m) // want `unguarded float at Acc`
}
