// Fixture for the zerodep analyzer: package name "dashboard" puts it in
// the zero-dependency set, so repro-internal imports must be flagged while
// standard-library imports (including multi-segment ones like net/http)
// stay silent, and //lint:allow exemptions behave as everywhere else.
package dashboard

import (
	"encoding/json"
	"net/http"

	"repro/internal/telemetry" // want `package dashboard must import only the standard library`

	//lint:allow zerodep fixture demonstrates the exemption path
	"repro/internal/persist"
)

func stdlibOnly(w http.ResponseWriter) {
	_ = json.NewEncoder(w).Encode(struct{}{})
}

func coupled() (*telemetry.Registry, persist.Entry) {
	return telemetry.NewRegistry(), persist.Entry{}
}
