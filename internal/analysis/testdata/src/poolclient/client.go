// Fixture for the poolescape analyzer: every way a pooled buffer can
// outlive its arena cycle (return from the owning frame, struct-field
// store, goroutine capture, channel send) plus the sanctioned borrow
// idioms that must stay silent.
package poolclient

import "tensor"

type holder struct {
	buf []float32
	t   *tensor.Tensor
}

var pkgPool tensor.Pool

func returnOwned() []float32 {
	var p tensor.Pool
	buf := p.Get(8)
	return buf // want `function-owned tensor.Pool is returned`
}

func returnOwnedTensor() *tensor.Tensor {
	t := pkgPool.GetTensor(2, 4)
	return t // want `function-owned tensor.Pool is returned`
}

func storeField(h *holder) {
	h.buf = pkgPool.Get(8) // want `stored into a struct field`
}

func goCapture() {
	buf := pkgPool.Get(8)
	go func() { // want `captured by a spawned goroutine`
		_ = buf[0]
	}()
}

func sendChan(ch chan []float32) {
	buf := pkgPool.Get(8)
	ch <- buf // want `sent on a channel`
}

// borrowReturn returns scratch carved from a caller-supplied pool: the
// caller owns Reset, so the return stays inside one arena cycle.
func borrowReturn(p *tensor.Pool) []float32 {
	out := p.Get(8)
	for i := range out {
		out[i] = 0
	}
	return out
}

// layer mirrors the nn forward/backward protocol: the pool is reachable
// from the receiver, so returning its scratch is the borrow idiom.
type layer struct {
	scratch *tensor.Pool
}

func (l *layer) forward(x []float32) []float32 {
	out := l.scratch.Get(len(x))
	copy(out, x)
	return out
}

// localUse keeps the buffer inside the frame that owns the pool.
func localUse() float32 {
	var p tensor.Pool
	buf := p.Get(8)
	s := float32(0)
	for _, v := range buf {
		s += v
	}
	p.Reset()
	return s
}

// consume hands the buffer to an ordinary call, which finishes within
// this frame — not an escape.
func consume() float32 {
	var p tensor.Pool
	buf := p.Get(8)
	return sum(buf)
}

func sum(xs []float32) float32 {
	s := float32(0)
	for _, v := range xs {
		s += v
	}
	return s
}

// exempted demonstrates the //lint:allow escape hatch.
func exempted() []float32 {
	var p tensor.Pool
	buf := p.Get(8)
	return buf //lint:allow poolescape fixture exercises the exemption path
}
