// Fixture for the telemetryclock analyzer: package name "flnet" puts it
// in the instrumented hot-path set, so top-level time.Now/time.Since must
// be flagged, while telemetry.Clock/telemetry.Nanos usage, time.Time
// methods on already-read values, and //lint:allow exemptions for OS
// deadlines stay silent.
package flnet

import (
	"net"
	"time"

	"repro/internal/telemetry"
)

func rawNow() time.Time {
	return time.Now() // want `call to time.Now on the round hot path bypasses the telemetry epoch`
}

func rawSince(start time.Time) time.Duration {
	return time.Since(start) // want `call to time.Since on the round hot path bypasses the telemetry epoch`
}

// sanctioned reads go through the telemetry clock, so phase spans and
// Chrome tracks all share one epoch.
func sanctioned() (time.Time, int64) {
	return telemetry.Clock(), telemetry.Nanos()
}

// methodsOnValues operate on timestamps already read; only the read
// itself needs to route through the telemetry clock.
func methodsOnValues(a, b time.Time) time.Duration {
	return b.Sub(a)
}

// deadline demonstrates the sanctioned OS-deadline exemption: the read
// feeds the kernel's socket timeout machinery, never a result.
func deadline(c net.Conn, timeout time.Duration) error {
	//lint:allow telemetryclock socket deadline feeds the OS, not results
	return c.SetReadDeadline(time.Now().Add(timeout))
}

// nonClockTimeCalls from package time (durations, parsing) carry no
// wall-clock read and must not be flagged.
func nonClockTimeCalls() (time.Duration, time.Time, error) {
	d := 3 * time.Second
	ts, err := time.Parse(time.RFC3339, "2023-06-27T00:00:00Z")
	return d, ts, err
}
