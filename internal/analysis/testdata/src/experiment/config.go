// Fixture for the runkey analyzer: a miniature experiment.Config with the
// frozen untagged legacy prefix, a correctly tagged axis, and one field
// violating each clause of the key-stability contract.
package experiment

// Extra exists only to exercise the embedded-field clause.
type Extra struct {
	Note string
}

type Config struct {
	// Untagged legacy prefix: frozen shape, never flagged.
	Dataset string
	Seed    int64
	Beta    float64

	// Correctly added axis: omitempty and canonicalized in Normalize.
	Partition string `json:",omitempty"`

	Rounds  int    // want `field Rounds extends experiment.Config without a json tag`
	Sampler string `json:"sampler"` // want `serialized without omitempty`
	Ghost   string `json:",omitempty"` // want `not reachable from Normalize or cleanKey`
	hidden  int    // want `unexported field hidden`
	Extra   // want `embedded field in experiment.Config`

	// Never serialized: json:"-" is always legal.
	AuditPath string `json:"-"`

	// Exempted violation (omitempty but unreachable from Normalize).
	Legacy string `json:",omitempty"` //lint:allow runkey fixture exercises the exemption path
}

func (c *Config) Normalize() error {
	if c.Partition == "" {
		c.Partition = "iid"
	}
	if c.Sampler == "" {
		c.Sampler = "uniform"
	}
	return nil
}

func (c Config) cleanKey() Config {
	k := c
	k.AuditPath = ""
	return k
}
