// Fixture for the determinism analyzer: package name "fl" puts it in the
// result-affecting set, so global-RNG draws, wall-clock/pid seeds, and
// map-iteration-order leaks must all be flagged, while the sanctioned
// idioms (explicit *rand.Rand, sorted-keys, integer counting) stay silent.
package fl

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `draws from the process-global RNG`
}

func globalFloat() float64 {
	return rand.Float64() // want `draws from the process-global RNG`
}

func clockSeed() int64 {
	return time.Now().UnixNano() // want `call to time.Now`
}

func pidSeed() int {
	return os.Getpid() // want `call to os.Getpid`
}

func mapAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation inside a map range`
	}
	return sum
}

func mapAppend(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map range leaks iteration order`
	}
	return keys
}

// seeded is the sanctioned form: methods on an explicitly seeded
// *rand.Rand are not global-RNG draws.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// sortedKeys is the canonical sorted-keys idiom: the appended slice is
// deterministically ordered before it can affect anything.
func sortedKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// intCount accumulates integers, which is iteration-order-independent.
func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// perElement writes one distinct element per iteration; no order leak.
func perElement(m map[string]float64, scale map[string]float64) {
	for k := range m {
		scale[k] += m[k]
	}
}

// loopLocal accumulates into state that never leaves the iteration.
func loopLocal(m map[string][]float64) []float64 {
	var out []float64
	for k := range m {
		s := 0.0
		for _, v := range m[k] {
			s += v
		}
		out = append(out, s)
	}
	sort.Float64s(out)
	return out
}

// exempted demonstrates the //lint:allow escape hatch.
func exempted() int64 {
	return time.Now().UnixNano() //lint:allow determinism fixture exercises the exemption path
}
