// Fixture arena: a miniature tensor.Pool with the same hand-out surface
// as the real one. The poolescape analyzer matches the receiver type by
// package name + type name, so this package stands in for the real arena;
// it is also itself exempt (the arena implements the arena).
package tensor

type Tensor struct {
	Data  []float32
	Shape []int
}

type Pool struct {
	arena []float32
}

func (p *Pool) Get(n int) []float32 {
	if p == nil {
		return make([]float32, n)
	}
	start := len(p.arena)
	p.arena = append(p.arena, make([]float32, n)...)
	return p.arena[start : start+n : start+n]
}

func (p *Pool) GetTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &Tensor{Data: p.Get(n), Shape: shape}
}

func (p *Pool) GetView(data []float32, shape ...int) *Tensor {
	return &Tensor{Data: data, Shape: shape}
}

func (p *Pool) Reset() {
	if p != nil {
		p.arena = p.arena[:0]
	}
}
