// Package analysis is fllint's machine-checkable encoding of the repo's
// reproducibility invariants: the properties the DFA/DFA-R results rest on
// — bit-identical runs at any worker count, stable run-store keys, arena
// buffer ownership, NaN-safe JSON at every persistence boundary — are
// enforced here as vet-style analyzers instead of review convention.
//
// The package mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic) so the analyzers could be lifted onto the
// upstream framework mechanically; the local mirror exists because the
// repro builds offline with a dependency-free go.mod. Loading and
// type-checking are driven by `go list -export` plus the compiler's export
// data (see load.go), the same substrate `go vet` itself runs on.
//
// A deliberate violation is exempted in place with a reason:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above it. An allow comment without a
// reason is itself a violation: exemptions are part of the audit trail.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is the one-paragraph invariant statement shown by fllint -help.
	Doc string
	// Run checks one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// allowMarker is the exemption comment prefix.
const allowMarker = "lint:allow "

// allowSet records, per file line, which analyzers an allow comment
// exempts.
type allowSet map[int]map[string]bool

// buildAllowSet scans a file's comments for lint:allow markers. A comment
// on line L exempts diagnostics on L and on L+1, matching the two idiomatic
// placements (end-of-line and line-above). Reasonless allow comments are
// returned separately — they exempt nothing and are reported as violations
// themselves.
func buildAllowSet(fset *token.FileSet, files []*ast.File) (allowSet, []token.Pos) {
	allow := allowSet{}
	var reasonless []token.Pos
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowMarker))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					reasonless = append(reasonless, c.Pos())
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, l := range [2]int{line, line + 1} {
					if allow[l] == nil {
						allow[l] = map[string]bool{}
					}
					allow[l][name] = true
				}
			}
		}
	}
	return allow, reasonless
}

// Run applies the analyzers to each loaded package and returns the
// surviving diagnostics sorted by position. Exempted diagnostics are
// dropped; malformed (reasonless) allow comments are reported under the
// pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		// The invariants govern the production result path; test files are
		// free to build adversarial values (NaN configs, raw clocks). The
		// standalone loader never lists them, but the go vet driver hands us
		// [test] variants, so filter by filename for identical verdicts in
		// both modes.
		inTest := func(pos token.Pos) bool {
			return strings.HasSuffix(pkg.Fset.Position(pos).Filename, "_test.go")
		}
		allow, reasonless := buildAllowSet(pkg.Fset, pkg.Files)
		for _, pos := range reasonless {
			if inTest(pos) {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      pos,
				Analyzer: "lint",
				Message:  "lint:allow exemption is missing a reason: write //lint:allow <analyzer> <reason>",
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				if inTest(d.Pos) {
					return
				}
				line := pkg.Fset.Position(d.Pos).Line
				if allow[line][a.Name] {
					return
				}
				out = append(out, d)
			}
			if err := a.Run(pass); err != nil {
				out = append(out, Diagnostic{
					Pos:      pkg.Files[0].Pos(),
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// All returns fllint's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, RunKey, PoolEscape, NaNJSON, TelemetryClock, ZeroDep}
}

// ByName resolves analyzer names (comma-separated lists accepted by the
// fllint -checks flag) against the suite.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
