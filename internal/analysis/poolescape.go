package analysis

import (
	"go/ast"
	"go/types"
)

// PoolEscape machine-checks the tensor.Pool arena ownership rules that
// were previously README prose: storage handed out by Get/GetTensor/
// GetView is valid only until the owning pool's next Reset and the arena
// is single-goroutine. A pooled buffer must never (a) be stored into a
// struct field that outlives the call frame, (b) be captured by a spawned
// goroutine, (c) be sent on a channel, or (d) be returned from a function
// that owns the pool itself — the caller cannot see the Reset that kills
// the buffer.
//
// Returning scratch carved from a pool the *caller* supplied (a *Pool
// parameter, or a pool reachable from the method receiver, as in the
// nn.Layer forward/backward protocol) is the sanctioned borrow idiom: the
// pool's owner controls Reset and the return stays inside one arena cycle.
// Passing a pooled buffer to an ordinary call is likewise allowed — the
// callee consumes it within the caller's frame. The arena's own package is
// exempt (it implements the arena).
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: `forbid tensor.Pool buffers from escaping their arena frame

Values obtained from tensor.Pool Get/GetTensor/GetView are arena scratch,
recycled wholesale at Reset. Storing them into struct fields, capturing
them in go statements, sending them on channels, or returning them from
the function that owns the pool makes a buffer outlive its arena cycle —
the next Reset silently aliases it into unrelated computation, corrupting
results without ever crashing. Returning scratch from a caller-supplied
(parameter or receiver) pool is the borrow idiom and allowed.`,
	Run: runPoolEscape,
}

// poolMethods are the arena hand-out entry points.
var poolMethods = map[string]bool{"Get": true, "GetTensor": true, "GetView": true}

func runPoolEscape(pass *Pass) error {
	if pass.Pkg.Name() == "tensor" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tr := newPoolTracker(pass.TypesInfo, fd)
			tr.propagate(fd.Body)
			tr.check(pass, fd.Body)
		}
	}
	return nil
}

// poolTracker tracks, within one function, which locals are bound to
// pooled buffers — split into values from caller-supplied (borrowed)
// pools and values from function-owned pools, because only the latter may
// not be returned.
type poolTracker struct {
	info   *types.Info
	params map[types.Object]bool // parameters + receivers, incl. nested FuncLits
	any    map[types.Object]bool // bound to any pooled value
	owned  map[types.Object]bool // bound to a function-owned pool's value
}

func newPoolTracker(info *types.Info, fd *ast.FuncDecl) *poolTracker {
	tr := &poolTracker{
		info:   info,
		params: map[types.Object]bool{},
		any:    map[types.Object]bool{},
		owned:  map[types.Object]bool{},
	}
	addFields := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					tr.params[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addFields(lit.Type.Params)
		}
		return true
	})
	return tr
}

// poolCall classifies e: not a pool hand-out call (0), a hand-out from a
// caller-supplied pool (1), or from a function-owned pool (2).
func (tr *poolTracker) poolCall(e ast.Expr) int {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	fn, ok := tr.info.Uses[sel.Sel].(*types.Func)
	if !ok || !poolMethods[fn.Name()] {
		return 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0
	}
	named, ok := derefNamed(sig.Recv().Type())
	if !ok || named.Obj().Name() != "Pool" ||
		named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "tensor" {
		return 0
	}
	if root := rootObj(tr.info, sel.X); root != nil && tr.params[root] {
		return 1 // pool supplied by the caller: borrow idiom
	}
	return 2 // local or package-level pool: this frame owns Reset
}

// propagate computes the fixpoint of pooled-value bindings through local
// assignments. Rebinding to a non-pooled value later is treated
// conservatively (once pooled, always pooled).
func (tr *poolTracker) propagate(body *ast.BlockStmt) {
	for {
		grew := false
		bind := func(id *ast.Ident, fromOwned bool) {
			obj := tr.info.Defs[id]
			if obj == nil {
				obj = tr.info.Uses[id]
			}
			if obj == nil {
				return
			}
			if !tr.any[obj] {
				tr.any[obj] = true
				grew = true
			}
			if fromOwned && !tr.owned[obj] {
				tr.owned[obj] = true
				grew = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
					if !ok {
						continue
					}
					if tr.pooled(rhs, false) {
						bind(id, tr.pooled(rhs, true))
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i >= len(n.Names) {
						break
					}
					if tr.pooled(v, false) {
						bind(n.Names[i], tr.pooled(v, true))
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
}

// check reports the escape sites.
func (tr *poolTracker) check(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tr.pooled(res, true) {
					pass.Reportf(res.Pos(),
						"buffer from a function-owned tensor.Pool is returned: the caller cannot see the Reset that recycles it")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if storesToField(lhs) && tr.pooled(n.Rhs[i], false) {
					pass.Reportf(n.Rhs[i].Pos(),
						"pooled tensor.Pool buffer is stored into a struct field: the field outlives the arena cycle that owns the buffer")
				}
			}
		case *ast.GoStmt:
			if tr.goUsesPooled(n.Call) {
				pass.Reportf(n.Pos(),
					"pooled tensor.Pool buffer is captured by a spawned goroutine: pools are single-goroutine and buffers die at Reset")
			}
		case *ast.SendStmt:
			if tr.pooled(n.Value, false) {
				pass.Reportf(n.Value.Pos(),
					"pooled tensor.Pool buffer is sent on a channel: the receiver outlives the arena cycle that owns the buffer")
			}
		}
		return true
	})
}

// pooled reports whether evaluating e can yield a pooled buffer (or an
// aliasing view of one); with ownedOnly it considers only buffers from
// function-owned pools. Slicing, field selection, dereference, address-
// taking and composite literals propagate the taint; indexing yields an
// element copy and ordinary calls consume the buffer within the frame, so
// both sever it. The append builtin propagates its arguments; a closure
// referencing pooled state carries the taint of what it captures.
func (tr *poolTracker) pooled(e ast.Expr, ownedOnly bool) bool {
	set := tr.any
	if ownedOnly {
		set = tr.owned
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := tr.info.Uses[v]
		if obj == nil {
			obj = tr.info.Defs[v]
		}
		return obj != nil && set[obj]
	case *ast.CallExpr:
		if kind := tr.poolCall(v); kind != 0 {
			return !ownedOnly || kind == 2
		}
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := tr.info.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range v.Args {
					if tr.pooled(arg, ownedOnly) {
						return true
					}
				}
			}
		}
		return false
	case *ast.SelectorExpr:
		return tr.pooled(v.X, ownedOnly)
	case *ast.SliceExpr:
		return tr.pooled(v.X, ownedOnly)
	case *ast.StarExpr:
		return tr.pooled(v.X, ownedOnly)
	case *ast.UnaryExpr:
		return tr.pooled(v.X, ownedOnly)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if tr.pooled(el, ownedOnly) {
				return true
			}
		}
		return false
	case *ast.FuncLit:
		found := false
		ast.Inspect(v.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := tr.info.Uses[id]; obj != nil && set[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}

// goUsesPooled reports whether a go statement's call references a pooled
// buffer — in the spawned function literal's body or as a call argument
// handed to the new goroutine.
func (tr *poolTracker) goUsesPooled(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tr.pooled(arg, false) {
			return true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return tr.pooled(lit, false)
	}
	return false
}

// storesToField reports whether lhs writes through a field selector
// (s.f = …, s.f[i] = …).
func storesToField(lhs ast.Expr) bool {
	for {
		switch v := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			return true
		case *ast.IndexExpr:
			lhs = v.X
		case *ast.StarExpr:
			lhs = v.X
		default:
			return false
		}
	}
}
