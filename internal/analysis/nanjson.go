package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// nanjsonPackages are the packages that serialize result metrics, where
// the paper's "not applicable" convention is NaN: encoding/json rejects
// NaN outright, so one unguarded float turns a whole report/journal write
// into an error at the worst possible time (end of a long run).
var nanjsonPackages = map[string]bool{"forensics": true, "report": true, "experiment": true}

// NaNJSON machine-checks the NaN→null discipline of the persistence
// boundaries: every struct reaching json.Marshal or (*json.Encoder).Encode
// in forensics, report or experiment must carry its NaN-able floats as
// nullable pointers (the jf/encFloat convention) or own a MarshalJSON that
// does so. Raw float64 fields in a marshaled type are flagged with the
// field path that can smuggle a NaN to the encoder.
var NaNJSON = &Analyzer{
	Name: "nanjson",
	Doc: `enforce NaN→null guards on every JSON boundary of the result path

In forensics, report and experiment, any value passed to json.Marshal,
json.MarshalIndent or (*json.Encoder).Encode must not expose raw float
fields: the paper's metrics use NaN for "N/A", encoding/json rejects NaN,
and an unguarded field fails the entire marshal at runtime. Guard floats
as *float64 via the jf/encFloat helpers or implement MarshalJSON on the
carrying type. Interface-typed arguments are not checkable and are
skipped.`,
	Run: runNaNJSON,
}

func runNaNJSON(pass *Pass) error {
	if !nanjsonPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg, what := jsonMarshalArg(pass.TypesInfo, call)
			if arg == nil {
				return true
			}
			t := pass.TypesInfo.TypeOf(arg)
			if t == nil {
				return true
			}
			if path, found := unguardedFloat(t, nil); found {
				pass.Reportf(arg.Pos(),
					"%s of %s: unguarded float at %s can carry NaN and fail the whole marshal; guard it as *float64 (jf/encFloat) or give the type a MarshalJSON",
					what, types.TypeString(t, types.RelativeTo(pass.Pkg)), path)
			}
			return true
		})
	}
	return nil
}

// jsonMarshalArg returns the marshaled argument when call is json.Marshal,
// json.MarshalIndent or a (*json.Encoder).Encode call, else nil.
func jsonMarshalArg(info *types.Info, call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" || len(call.Args) == 0 {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, ""
	}
	if sig.Recv() == nil {
		if fn.Name() == "Marshal" || fn.Name() == "MarshalIndent" {
			return call.Args[0], "json." + fn.Name()
		}
		return nil, ""
	}
	if named, ok := derefNamed(sig.Recv().Type()); ok && named.Obj().Name() == "Encoder" && fn.Name() == "Encode" {
		return call.Args[0], "(*json.Encoder).Encode"
	}
	return nil, ""
}

// unguardedFloat walks t's marshaled shape and returns the path of the
// first raw (non-pointer) float field, honoring json:"-" skips and
// trusting any type that implements json.Marshaler or encoding.
// TextMarshaler to guard its own subtree. *float64 is the guard idiom and
// always trusted. Interfaces are unverifiable statically and skipped.
func unguardedFloat(t types.Type, seen []types.Type) (string, bool) {
	for _, s := range seen {
		if types.Identical(s, t) {
			return "", false
		}
	}
	seen = append(seen, t)

	if marshalsItself(t) {
		return "", false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsFloat != 0 {
			return "", true
		}
	case *types.Pointer:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			return "", false // *float64: the NaN→null guard idiom
		}
		return unguardedFloat(u.Elem(), seen)
	case *types.Slice:
		if path, found := unguardedFloat(u.Elem(), seen); found {
			return "[]" + path, true
		}
	case *types.Array:
		if path, found := unguardedFloat(u.Elem(), seen); found {
			return "[]" + path, true
		}
	case *types.Map:
		if path, found := unguardedFloat(u.Elem(), seen); found {
			return "[·]" + path, true
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			tag := reflect.StructTag(u.Tag(i))
			if jt, ok := tag.Lookup("json"); ok && jt == "-" {
				continue
			}
			if path, found := unguardedFloat(f.Type(), seen); found {
				if path == "" {
					return f.Name(), true
				}
				if strings.HasPrefix(path, "[") {
					return f.Name() + path, true
				}
				return f.Name() + "." + path, true
			}
		}
	}
	return "", false
}

// marshalsItself reports whether t (or *t) implements json.Marshaler or
// encoding.TextMarshaler and therefore owns its NaN discipline.
func marshalsItself(t types.Type) bool {
	for _, name := range [2]string{"MarshalJSON", "MarshalText"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if fn, ok := obj.(*types.Func); ok {
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 0 && sig.Results().Len() == 2 {
				return true
			}
		}
	}
	return false
}


