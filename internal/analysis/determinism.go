package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// resultPackages are the packages whose code feeds the reproduction's
// reported numbers: any nondeterminism here breaks the bit-identical
// worker-count/transport/forensics invariants the paper claims rest on.
// Matching is by package name so analysistest fixtures exercise the same
// predicate as the real tree.
var resultPackages = map[string]bool{
	"fl": true, "core": true, "defense": true, "tensor": true,
	"vec": true, "population": true, "forensics": true, "attack": true,
	"report": true, "codec": true,
}

// Determinism flags the three nondeterminism leaks the fixed-seed suite
// cannot reliably catch: top-level math/rand draws (process-global RNG),
// wall-clock/process-identity seed sources, and map iteration order
// escaping into order-sensitive accumulation.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism sources in result-affecting packages

In fl, core, defense, tensor, vec, population, forensics, attack, report
and codec: (1) math/rand's package-level functions draw from the global RNG,
which is shared across goroutines and unseedable per run — construct an
explicit rand.New(rand.NewSource(seed)); (2) time.Now and os.Getpid are
per-process values, so any seed or result derived from them is
unreproducible; (3) ranging over a map while appending to an outer slice
or accumulating into a float leaks the runtime's randomized iteration
order into results — iterate sorted keys instead (an append that is
deterministically sorted later in the same function is accepted).`,
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !resultPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
				return true
			}
			return true
		})
	}
	return nil
}

// checkNondeterministicCall flags global-RNG and clock/pid call sites.
func checkNondeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are the sanctioned form
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewPCG, …) build the explicitly
		// seeded generators the invariant demands; every other top-level
		// function draws from the process-global RNG.
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(),
				"call to %s.%s draws from the process-global RNG; result-affecting packages must use an explicitly seeded *rand.Rand",
				fn.Pkg().Path(), fn.Name())
		}
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"call to time.Now in a result-affecting package: wall-clock-derived values (seeds, tie-breakers) are unreproducible")
		}
	case "os":
		if fn.Name() == "Getpid" {
			pass.Reportf(call.Pos(),
				"call to os.Getpid in a result-affecting package: process-identity-derived values (seeds) are unreproducible")
		}
	}
}

// calleeFunc resolves a call's static callee, or nil for indirect calls
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// checkMapRanges scans one function body for map-range loops whose body
// accumulates into state declared outside the loop in an order-sensitive
// way: append to a slice (element order = iteration order) or compound
// float arithmetic (FP non-associativity). Integer accumulation is
// order-independent and ignored; an appended slice that is sorted later in
// the same body (sort.* / slices.Sort*) is the canonical sorted-keys idiom
// and accepted.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		keyObj := rangeKeyObj(info, rng)
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range as.Lhs {
					checkFloatAccumulate(pass, info, rng, keyObj, lhs)
				}
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range as.Rhs {
					if i >= len(as.Lhs) {
						break
					}
					checkOrderedAppend(pass, info, body, rng, as.Lhs[i], rhs)
				}
			}
			return true
		})
		return true
	})
}

// rangeKeyObj returns the loop's key variable object, if any.
func rangeKeyObj(info *types.Info, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// checkFloatAccumulate flags `x op= …` inside a map range when x is
// floating-point state declared outside the loop. Writes to m[k] — one
// distinct element per iteration — are order-independent and skipped.
func checkFloatAccumulate(pass *Pass, info *types.Info, rng *ast.RangeStmt, keyObj types.Object, lhs ast.Expr) {
	t := info.TypeOf(lhs)
	if t == nil || !isFloat(t) {
		return
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
		if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok && info.Uses[id] == keyObj {
			return // m[k] op= v touches a distinct element per iteration
		}
	}
	if obj := rootObj(info, lhs); obj != nil && obj.Pos() > rng.Pos() && obj.Pos() < rng.End() {
		return // loop-local accumulator never leaves the iteration
	}
	pass.Reportf(lhs.Pos(),
		"floating-point accumulation inside a map range: iteration order changes the FP rounding of the result; iterate sorted keys")
}

// checkOrderedAppend flags `s = append(s, …)` inside a map range when s is
// declared outside the loop and never deterministically sorted afterwards
// in the same function body.
func checkOrderedAppend(pass *Pass, info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, lhs, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return // shadowed: not the append builtin
	}
	obj := rootObj(info, lhs)
	if obj == nil || (obj.Pos() > rng.Pos() && obj.Pos() < rng.End()) {
		return // appending to loop-local state
	}
	if sortedAfter(info, body, rng, obj) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"append to %s inside a map range leaks iteration order; sort it afterwards or iterate sorted keys", obj.Name())
}

// sortedAfter reports whether obj is passed to a sort/slices ordering
// function after the range loop within the same function body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || sorted {
			return !sorted
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObj(info, arg) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// rootObj resolves the variable at the root of an lvalue chain
// (x, x.f, x[i], *x, …).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
