package analysis

import (
	"go/ast"
	"go/types"
)

// hotPathPackages are the packages on the per-round hot path that the
// telemetry subsystem instruments: spans in them must share one epoch so
// a Chrome trace's tracks line up, and the on/off bit-identity invariant
// (TestTelemetryOnOffBitIdentical) means no result may depend on when a
// phase ran. Matching is by package name so analysistest fixtures
// exercise the same predicate as the real tree. internal/telemetry itself
// is deliberately absent — it implements the sanctioned clock — and
// experiment sits above the hot path (its wall-clock reads feed lease
// staleness and progress ETAs, not spans).
var hotPathPackages = map[string]bool{
	"fl": true, "flnet": true, "defense": true, "codec": true,
	"core": true, "forensics": true, "population": true,
}

// TelemetryClock forbids raw wall-clock reads on the round hot path.
var TelemetryClock = &Analyzer{
	Name: "telemetryclock",
	Doc: `route hot-path wall-clock reads through the telemetry clock

In fl, flnet, defense, codec, core, forensics and population — the
packages the round tracer instruments — top-level time.Now and time.Since
calls bypass the telemetry epoch: spans timed off a private clock land on
the wrong spot in the Chrome trace, and a second clock source is the first
step toward time-dependent results, which the telemetry-off bit-identity
test cannot catch if both runs take the same branch. Use telemetry.Clock
for wall-clock timestamps and telemetry.Nanos for span durations. Reads
that feed the operating system rather than results — socket and accept
deadlines — are exempted in place with //lint:allow telemetryclock.`,
	Run: runTelemetryClock,
}

func runTelemetryClock(pass *Pass) error {
	if !hotPathPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods ((time.Time).Sub etc.) operate on values already read
			}
			if name := fn.Name(); name == "Now" || name == "Since" {
				pass.Reportf(call.Pos(),
					"call to time.%s on the round hot path bypasses the telemetry epoch; use telemetry.Clock/telemetry.Nanos, or //lint:allow telemetryclock <reason> for OS deadlines",
					name)
			}
			return true
		})
	}
	return nil
}
