// Package analysistest runs one analyzer over source fixtures under a
// testdata directory and checks its diagnostics against // want comments.
// It mirrors golang.org/x/tools/go/analysis/analysistest for the local
// framework, so the fixture layout (testdata/src/<pkg>/*.go) and the
// expectation comments would survive a mechanical move to the upstream
// harness.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads testdata/src/<path> for each named fixture package, applies
// the analyzer through the same exemption-filtering pipeline as fllint
// (so //lint:allow comments and the reasonless-allow check behave exactly
// as in production), and compares the diagnostics against the fixtures'
// expectation comments:
//
//	// want "regexp" `regexp` ...
//
// declares that each pattern must match one diagnostic reported on that
// line. // want+1 declares expectations for the following line — needed
// for diagnostics that land on comment-only lines, such as the
// reasonless-allow violation, whose position is the comment itself.
//
// Fixture packages import each other by bare path (resolved from
// testdata/src) and the standard library (resolved from compiler export
// data).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(testdata)
	var pkgs []*analysis.Package
	for _, p := range pkgPaths {
		pkg, err := l.load(p)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		pkgs = append(pkgs, pkg)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		ws, err := collectWants(l.fset, pkg.Files)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		wants = append(wants, ws...)
	}
	for _, d := range analysis.Run(pkgs, []*analysis.Analyzer{a}) {
		pos := l.fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

// An expectation is one want pattern anchored to a fixture line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// claim marks the first unmet expectation matching the diagnostic.
func claim(wants []*expectation, pos token.Position, message string) bool {
	for _, w := range wants {
		if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(message) {
			w.met = true
			return true
		}
	}
	return false
}

// wantPattern extracts the quoted ("…" with escapes) and backquoted (`…`)
// expectation patterns from a want comment.
var wantPattern = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// collectWants parses the expectation comments out of the fixture files.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				offset := 0
				switch {
				case strings.HasPrefix(text, "want+1 "):
					offset, text = 1, strings.TrimPrefix(text, "want+1 ")
				case strings.HasPrefix(text, "want "):
					text = strings.TrimPrefix(text, "want ")
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantPattern.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					pat := m[2]
					if m[1] != "" || m[2] == "" {
						unq, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line + offset, re: re})
				}
			}
		}
	}
	return wants, nil
}

// loader type-checks fixture packages from testdata/src, resolving
// fixture-local imports recursively from source and everything else from
// compiler export data.
type loader struct {
	fset *token.FileSet
	src  string
	pkgs map[string]*analysis.Package
	dep  types.Importer
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		src:  filepath.Join(testdata, "src"),
		pkgs: map[string]*analysis.Package{},
		dep:  analysis.NewDepImporter(fset),
	}
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check fixture %s: %v", path, err)
	}
	pkg := &analysis.Package{
		PkgPath: path,
		Name:    tpkg.Name(),
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import resolves fixture-local packages from source and delegates the
// rest (stdlib) to export data, satisfying types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.src, path)); err == nil && st.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.dep.Import(path)
}
