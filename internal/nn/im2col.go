package nn

// im2col expands one sample x ([ch, h, w], flat) into the patch matrix
// cols ([ch*kk*kk, posH*posW], flat): cols[(c*kk+ki)*kk+kj][i*posW+j] is the
// pixel the kernel tap (ki, kj) sees at output position (i, j), or 0 where
// the tap falls into padding. With this layout a convolution forward pass is
// the single product weight[outC, ch*kk*kk] · cols, and the transposed
// convolution's backward pass is the same expansion applied to the output
// gradient.
func im2col(cols, x []float64, ch, h, w, kk, stride, pad, posH, posW int) {
	posHW := posH * posW
	for c := 0; c < ch; c++ {
		xc := x[c*h*w : (c+1)*h*w]
		for ki := 0; ki < kk; ki++ {
			for kj := 0; kj < kk; kj++ {
				row := cols[((c*kk+ki)*kk+kj)*posHW : ((c*kk+ki)*kk+kj+1)*posHW]
				for i := 0; i < posH; i++ {
					ih := i*stride - pad + ki
					dst := row[i*posW : (i+1)*posW]
					if ih < 0 || ih >= h {
						clear(dst)
						continue
					}
					src := xc[ih*w : (ih+1)*w]
					if stride == 1 {
						// iw = j - pad + kj; copy the contiguous valid span.
						lo := pad - kj
						if lo < 0 {
							lo = 0
						}
						hi := w + pad - kj
						if hi > posW {
							hi = posW
						}
						if hi < lo {
							hi = lo
						}
						clear(dst[:lo])
						copy(dst[lo:hi], src[lo-pad+kj:hi-pad+kj])
						clear(dst[hi:])
						continue
					}
					for j := 0; j < posW; j++ {
						iw := j*stride - pad + kj
						if iw < 0 || iw >= w {
							dst[j] = 0
						} else {
							dst[j] = src[iw]
						}
					}
				}
			}
		}
	}
}

// col2im scatters a patch matrix back into image space: for every kernel
// tap and position it accumulates cols[(c*kk+ki)*kk+kj][i*posW+j] into
// x[c][i*stride-pad+ki][j*stride-pad+kj], skipping taps in padding. x is
// accumulated into, not overwritten; callers zero or bias-fill it first.
// This is the adjoint of im2col, used for the convolution's input gradient
// and the transposed convolution's forward scatter.
func col2im(x, cols []float64, ch, h, w, kk, stride, pad, posH, posW int) {
	posHW := posH * posW
	for c := 0; c < ch; c++ {
		xc := x[c*h*w : (c+1)*h*w]
		for ki := 0; ki < kk; ki++ {
			for kj := 0; kj < kk; kj++ {
				row := cols[((c*kk+ki)*kk+kj)*posHW : ((c*kk+ki)*kk+kj+1)*posHW]
				for i := 0; i < posH; i++ {
					ih := i*stride - pad + ki
					if ih < 0 || ih >= h {
						continue
					}
					dst := xc[ih*w : (ih+1)*w]
					src := row[i*posW : (i+1)*posW]
					if stride == 1 {
						lo := pad - kj
						if lo < 0 {
							lo = 0
						}
						hi := w + pad - kj
						if hi > posW {
							hi = posW
						}
						if hi < lo {
							hi = lo
						}
						off := kj - pad
						for j := lo; j < hi; j++ {
							dst[j+off] += src[j]
						}
						continue
					}
					for j := 0; j < posW; j++ {
						iw := j*stride - pad + kj
						if iw < 0 || iw >= w {
							continue
						}
						dst[iw] += src[j]
					}
				}
			}
		}
	}
}
