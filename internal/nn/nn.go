// Package nn implements the neural-network training stack the paper's
// experiments run on: layer-wise backpropagation over the tensor substrate,
// convolutional and transposed-convolutional layers (the latter for the
// DFA-G generator), dense layers, activations, softmax cross-entropy with
// hard and soft targets (the latter for DFA-R's uniform-confidence
// objective), and plain SGD.
//
// The federated-learning layers of the reproduction treat a model as its
// flat weight vector (see Eq. 1–2 of the paper); WeightVector and
// SetWeightVector convert between the two representations.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward stores whatever
// activations Backward needs, so a Layer instance must not be shared between
// concurrently training networks; Clone provides an independent copy.
type Layer interface {
	// Forward computes the layer output for a batch. When train is false,
	// layers may skip caching activations needed only by Backward.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the layer output, accumulates
	// parameter gradients, and returns the gradient w.r.t. the layer input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned 1:1 with Params.
	Grads() []*tensor.Tensor
	// Clone returns an independent copy with identical configuration and
	// parameter values but no shared state.
	Clone() Layer
}

// Network is an ordered sequence of layers trained end-to-end.
type Network struct {
	layers []Layer

	// scratch, when set, is the arena the layers allocate activations and
	// gradient temporaries from; see SetScratch.
	scratch *tensor.Pool

	// params and grads cache the flattened layer parameter/gradient slices
	// so the per-step hot paths (optimizer, weight-vector conversion) do not
	// allocate.
	params, grads []*tensor.Tensor
}

// NewNetwork builds a network from the given layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{layers: layers}
}

// Add appends a layer to the network.
func (n *Network) Add(l Layer) {
	n.layers = append(n.layers, l)
	n.params, n.grads = nil, nil
	if n.scratch != nil {
		if su, ok := l.(scratchUser); ok {
			su.setScratch(n.scratch)
		}
	}
}

// scratchUser is implemented by layers that can allocate their activations
// and temporaries from a scratch arena instead of the heap.
type scratchUser interface {
	setScratch(p *tensor.Pool)
}

// SetScratch attaches a scratch arena to the network: every pool-aware
// layer allocates its activations and gradient temporaries from p instead
// of the heap. The arena is owned by whoever drives the network (a training
// client, an evaluator worker): it must be Reset between training steps —
// TrainBatch does this — and anything produced by Forward/Backward is only
// valid until that Reset. Parameters, gradients and weight vectors never
// live in the arena. Passing nil detaches the arena.
func (n *Network) SetScratch(p *tensor.Pool) {
	n.scratch = p
	for _, l := range n.layers {
		if su, ok := l.(scratchUser); ok {
			su.setScratch(p)
		}
	}
}

// Scratch returns the attached scratch arena (nil when none).
func (n *Network) Scratch() *tensor.Pool { return n.scratch }

// ResetScratch recycles the attached scratch arena, invalidating every
// activation tensor produced since the previous reset. No-op without one.
func (n *Network) ResetScratch() { n.scratch.Reset() }

// Layers returns the network's layers in order. The returned slice is the
// internal one; callers must not mutate it.
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs the batch through every layer and returns the final output
// (for classifiers: the logits, shape [batch, classes]).
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x
	for _, l := range n.layers {
		out = l.Forward(out, train)
	}
	return out
}

// Backward propagates the output gradient through every layer in reverse and
// returns the gradient with respect to the network input. Parameter
// gradients accumulate into each layer's Grads tensors.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
	return g
}

// Params returns all trainable parameter tensors in layer order. The
// returned slice is cached; callers must not mutate it.
func (n *Network) Params() []*tensor.Tensor {
	if n.params == nil {
		for _, l := range n.layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// Grads returns all gradient tensors aligned with Params. The returned
// slice is cached; callers must not mutate it.
func (n *Network) Grads() []*tensor.Tensor {
	if n.grads == nil {
		for _, l := range n.layers {
			n.grads = append(n.grads, l.Grads()...)
		}
	}
	return n.grads
}

// ZeroGrads clears all accumulated parameter gradients.
func (n *Network) ZeroGrads() {
	for _, g := range n.Grads() {
		g.Zero()
	}
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Len()
	}
	return total
}

// WeightVector flattens all parameters into a single []float64 — the update
// representation exchanged with the federated server.
func (n *Network) WeightVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// SetWeightVector loads a flat weight vector produced by WeightVector back
// into the network parameters.
func (n *Network) SetWeightVector(v []float64) error {
	if len(v) != n.NumParams() {
		return fmt.Errorf("nn: weight vector length %d does not match %d parameters", len(v), n.NumParams())
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.Data, v[off:off+p.Len()])
		off += p.Len()
	}
	return nil
}

// GradVector flattens all parameter gradients into a single []float64,
// aligned with WeightVector.
func (n *Network) GradVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, g := range n.Grads() {
		out = append(out, g.Data...)
	}
	return out
}

// AddToGrads adds delta (a flat vector aligned with WeightVector) to the
// accumulated gradients. The DFA distance-based regularization term enters
// adversarial training through this hook.
func (n *Network) AddToGrads(delta []float64) error {
	if len(delta) != n.NumParams() {
		return fmt.Errorf("nn: gradient delta length %d does not match %d parameters", len(delta), n.NumParams())
	}
	off := 0
	for _, g := range n.Grads() {
		for i := range g.Data {
			g.Data[i] += delta[off+i]
		}
		off += g.Len()
	}
	return nil
}

// Clone returns an independent deep copy of the network: same architecture
// and weights, no shared tensors or cached activations.
func (n *Network) Clone() *Network {
	c := &Network{layers: make([]Layer, len(n.layers))}
	for i, l := range n.layers {
		c.layers[i] = l.Clone()
	}
	return c
}
