//go:build !race

package nn

// raceEnabled reports whether the race detector is active; the zero-alloc
// regression test skips under it because instrumentation allocates.
const raceEnabled = false
