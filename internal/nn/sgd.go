package nn

import "repro/internal/tensor"

// SGD is a stochastic-gradient-descent optimizer with optional classical
// momentum. The zero value is unusable; use NewSGD.
type SGD struct {
	// LR is the learning rate η of Eq. 1.
	LR float64
	// Momentum is the classical momentum coefficient (0 disables it).
	Momentum float64

	velocity []*tensor.Tensor
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one update to the network parameters from its accumulated
// gradients and then zeroes the gradients.
func (o *SGD) Step(n *Network) {
	params := n.Params()
	grads := n.Grads()
	if o.Momentum > 0 && o.velocity == nil {
		o.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			o.velocity[i] = tensor.New(p.Shape...)
		}
	}
	for i, p := range params {
		g := grads[i]
		if o.Momentum > 0 {
			v := o.velocity[i]
			for j := range p.Data {
				v.Data[j] = o.Momentum*v.Data[j] + g.Data[j]
				p.Data[j] -= o.LR * v.Data[j]
			}
		} else {
			for j := range p.Data {
				p.Data[j] -= o.LR * g.Data[j]
			}
		}
	}
	n.ZeroGrads()
}

// TrainBatch performs one optimization step of the network on a batch with
// hard labels and returns the batch loss before the step. This is the local
// training primitive used by benign clients (Eq. 1).
//
// When the network has a scratch arena attached, the arena is reset at
// entry and the whole step runs without steady-state heap allocation; x
// must therefore not itself live in the network's arena.
func TrainBatch(n *Network, opt *SGD, x *tensor.Tensor, labels []int) float64 {
	n.ResetScratch()
	logits := n.Forward(x, true)
	loss, grad := crossEntropyPool(n.Scratch(), logits, labels)
	n.Backward(grad)
	opt.Step(n)
	return loss
}
