package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over batched inputs of shape
// [batch, inC, H, W], producing [batch, outC, outH, outW] with
// outH = (H + 2*pad − kernel)/stride + 1.
//
// DFA-R's "filter layer" (Fig. 2 of the paper) is an instance of this layer:
// a single convolution mapping a static random image A to the synthetic
// image B, trained through the frozen global model.
type Conv2D struct {
	InC, OutC   int
	Kernel      int
	Stride, Pad int

	weight *tensor.Tensor // [outC, inC, k, k]
	bias   *tensor.Tensor // [outC]
	gradW  *tensor.Tensor
	gradB  *tensor.Tensor

	lastInput *tensor.Tensor
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D creates a convolution layer with He-uniform initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, kernel, stride, pad int) *Conv2D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid conv config kernel=%d stride=%d pad=%d", kernel, stride, pad))
	}
	c := &Conv2D{
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
		weight: tensor.New(outC, inC, kernel, kernel),
		bias:   tensor.New(outC),
		gradW:  tensor.New(outC, inC, kernel, kernel),
		gradB:  tensor.New(outC),
	}
	fanIn := float64(inC * kernel * kernel)
	limit := math.Sqrt(6.0 / fanIn)
	c.weight.FillUniform(rng, -limit, limit)
	return c
}

// OutSize returns the spatial output size for a given input size.
func (c *Conv2D) OutSize(in int) int {
	return (in+2*c.Pad-c.Kernel)/c.Stride + 1
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		c.lastInput = x
	}
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if inC != c.InC {
		panic(fmt.Sprintf("nn: conv input channels %d, want %d", inC, c.InC))
	}
	outH, outW := c.OutSize(h), c.OutSize(w)
	out := tensor.New(batch, c.OutC, outH, outW)
	k, s, p := c.Kernel, c.Stride, c.Pad

	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			bv := c.bias.Data[oc]
			for oh := 0; oh < outH; oh++ {
				ihBase := oh*s - p
				for ow := 0; ow < outW; ow++ {
					iwBase := ow*s - p
					sum := bv
					for ic := 0; ic < inC; ic++ {
						xBase := ((b*inC + ic) * h) * w
						wBase := ((oc*inC + ic) * k) * k
						for kh := 0; kh < k; kh++ {
							ih := ihBase + kh
							if ih < 0 || ih >= h {
								continue
							}
							xRow := xBase + ih*w
							wRow := wBase + kh*k
							for kw := 0; kw < k; kw++ {
								iw := iwBase + kw
								if iw < 0 || iw >= w {
									continue
								}
								sum += x.Data[xRow+iw] * c.weight.Data[wRow+kw]
							}
						}
					}
					out.Data[((b*c.OutC+oc)*outH+oh)*outW+ow] = sum
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := grad.Shape[2], grad.Shape[3]
	dx := tensor.New(batch, inC, h, w)
	k, s, p := c.Kernel, c.Stride, c.Pad

	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oh := 0; oh < outH; oh++ {
				ihBase := oh*s - p
				for ow := 0; ow < outW; ow++ {
					iwBase := ow*s - p
					g := grad.Data[((b*c.OutC+oc)*outH+oh)*outW+ow]
					if g == 0 {
						continue
					}
					c.gradB.Data[oc] += g
					for ic := 0; ic < inC; ic++ {
						xBase := ((b*inC + ic) * h) * w
						wBase := ((oc*inC + ic) * k) * k
						for kh := 0; kh < k; kh++ {
							ih := ihBase + kh
							if ih < 0 || ih >= h {
								continue
							}
							xRow := xBase + ih*w
							wRow := wBase + kh*k
							for kw := 0; kw < k; kw++ {
								iw := iwBase + kw
								if iw < 0 || iw >= w {
									continue
								}
								c.gradW.Data[wRow+kw] += g * x.Data[xRow+iw]
								dx.Data[xRow+iw] += g * c.weight.Data[wRow+kw]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weight, c.bias} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC:    c.InC,
		OutC:   c.OutC,
		Kernel: c.Kernel,
		Stride: c.Stride,
		Pad:    c.Pad,
		weight: c.weight.Clone(),
		bias:   c.bias.Clone(),
		gradW:  tensor.New(c.OutC, c.InC, c.Kernel, c.Kernel),
		gradB:  tensor.New(c.OutC),
	}
}

// ConvTranspose2D is a 2-D transposed convolution (fractionally strided
// convolution) over batched inputs [batch, inC, H, W], producing
// [batch, outC, outH, outW] with outH = (H−1)*stride − 2*pad + kernel.
//
// The DFA-G generator follows the WGAN recipe cited by the paper: two
// transposed convolutions upsample a latent noise block into an image.
type ConvTranspose2D struct {
	InC, OutC   int
	Kernel      int
	Stride, Pad int

	weight *tensor.Tensor // [inC, outC, k, k]
	bias   *tensor.Tensor // [outC]
	gradW  *tensor.Tensor
	gradB  *tensor.Tensor

	lastInput *tensor.Tensor
}

var _ Layer = (*ConvTranspose2D)(nil)

// NewConvTranspose2D creates a transposed-convolution layer with He-uniform
// initialized weights.
func NewConvTranspose2D(rng *rand.Rand, inC, outC, kernel, stride, pad int) *ConvTranspose2D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid convT config kernel=%d stride=%d pad=%d", kernel, stride, pad))
	}
	c := &ConvTranspose2D{
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
		weight: tensor.New(inC, outC, kernel, kernel),
		bias:   tensor.New(outC),
		gradW:  tensor.New(inC, outC, kernel, kernel),
		gradB:  tensor.New(outC),
	}
	fanIn := float64(inC * kernel * kernel)
	limit := math.Sqrt(6.0 / fanIn)
	c.weight.FillUniform(rng, -limit, limit)
	return c
}

// OutSize returns the spatial output size for a given input size.
func (c *ConvTranspose2D) OutSize(in int) int {
	return (in-1)*c.Stride - 2*c.Pad + c.Kernel
}

// Forward implements Layer.
func (c *ConvTranspose2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		c.lastInput = x
	}
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if inC != c.InC {
		panic(fmt.Sprintf("nn: convT input channels %d, want %d", inC, c.InC))
	}
	outH, outW := c.OutSize(h), c.OutSize(w)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: convT output size %dx%d not positive", outH, outW))
	}
	out := tensor.New(batch, c.OutC, outH, outW)
	k, s, p := c.Kernel, c.Stride, c.Pad

	// Bias.
	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := ((b*c.OutC + oc) * outH) * outW
			bv := c.bias.Data[oc]
			for i := 0; i < outH*outW; i++ {
				out.Data[base+i] = bv
			}
		}
	}
	// Scatter contributions.
	for b := 0; b < batch; b++ {
		for ic := 0; ic < inC; ic++ {
			xBase := ((b*inC + ic) * h) * w
			for ih := 0; ih < h; ih++ {
				ohBase := ih*s - p
				for iw := 0; iw < w; iw++ {
					xv := x.Data[xBase+ih*w+iw]
					if xv == 0 {
						continue
					}
					owBase := iw*s - p
					for oc := 0; oc < c.OutC; oc++ {
						oBase := ((b*c.OutC + oc) * outH) * outW
						wBase := ((ic*c.OutC + oc) * k) * k
						for kh := 0; kh < k; kh++ {
							oh := ohBase + kh
							if oh < 0 || oh >= outH {
								continue
							}
							oRow := oBase + oh*outW
							wRow := wBase + kh*k
							for kw := 0; kw < k; kw++ {
								ow := owBase + kw
								if ow < 0 || ow >= outW {
									continue
								}
								out.Data[oRow+ow] += xv * c.weight.Data[wRow+kw]
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *ConvTranspose2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := grad.Shape[2], grad.Shape[3]
	dx := tensor.New(batch, inC, h, w)
	k, s, p := c.Kernel, c.Stride, c.Pad

	// Bias gradient.
	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := ((b*c.OutC + oc) * outH) * outW
			sum := 0.0
			for i := 0; i < outH*outW; i++ {
				sum += grad.Data[base+i]
			}
			c.gradB.Data[oc] += sum
		}
	}
	// Weight and input gradients: mirror the forward scatter.
	for b := 0; b < batch; b++ {
		for ic := 0; ic < inC; ic++ {
			xBase := ((b*inC + ic) * h) * w
			for ih := 0; ih < h; ih++ {
				ohBase := ih*s - p
				for iw := 0; iw < w; iw++ {
					owBase := iw*s - p
					xv := x.Data[xBase+ih*w+iw]
					var dxv float64
					for oc := 0; oc < c.OutC; oc++ {
						oBase := ((b*c.OutC + oc) * outH) * outW
						wBase := ((ic*c.OutC + oc) * k) * k
						for kh := 0; kh < k; kh++ {
							oh := ohBase + kh
							if oh < 0 || oh >= outH {
								continue
							}
							oRow := oBase + oh*outW
							wRow := wBase + kh*k
							for kw := 0; kw < k; kw++ {
								ow := owBase + kw
								if ow < 0 || ow >= outW {
									continue
								}
								g := grad.Data[oRow+ow]
								c.gradW.Data[wRow+kw] += g * xv
								dxv += g * c.weight.Data[wRow+kw]
							}
						}
					}
					dx.Data[xBase+ih*w+iw] = dxv
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *ConvTranspose2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weight, c.bias} }

// Grads implements Layer.
func (c *ConvTranspose2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// Clone implements Layer.
func (c *ConvTranspose2D) Clone() Layer {
	return &ConvTranspose2D{
		InC:    c.InC,
		OutC:   c.OutC,
		Kernel: c.Kernel,
		Stride: c.Stride,
		Pad:    c.Pad,
		weight: c.weight.Clone(),
		bias:   c.bias.Clone(),
		gradW:  tensor.New(c.InC, c.OutC, c.Kernel, c.Kernel),
		gradB:  tensor.New(c.OutC),
	}
}
