package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over batched inputs of shape
// [batch, inC, H, W], producing [batch, outC, outH, outW] with
// outH = (H + 2*pad − kernel)/stride + 1.
//
// DFA-R's "filter layer" (Fig. 2 of the paper) is an instance of this layer:
// a single convolution mapping a static random image A to the synthetic
// image B, trained through the frozen global model.
//
// Both passes are lowered onto im2col/col2im plus the blocked GEMM kernels:
// per sample, the forward pass is weight[outC, inC·k²] times the patch
// matrix, the weight gradient is the output gradient times the transposed
// patch matrix, and the input gradient is col2im of weightᵀ times the
// output gradient. Samples are fanned out over the kernel worker pool with
// per-chunk patch buffers; the per-sample weight-gradient partials are
// reduced in batch order so results do not depend on the worker count. The
// original scalar loops are retained as forwardNaive/backwardNaive for the
// equivalence tests.
type Conv2D struct {
	InC, OutC   int
	Kernel      int
	Stride, Pad int

	weight *tensor.Tensor // [outC, inC, k, k]
	bias   *tensor.Tensor // [outC]
	gradW  *tensor.Tensor
	gradB  *tensor.Tensor

	lastInput *tensor.Tensor

	scratch  *tensor.Pool
	colsBufs [][]float64
	dwBufs   [][]float64
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D creates a convolution layer with He-uniform initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, kernel, stride, pad int) *Conv2D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid conv config kernel=%d stride=%d pad=%d", kernel, stride, pad))
	}
	c := &Conv2D{
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
		weight: tensor.New(outC, inC, kernel, kernel),
		bias:   tensor.New(outC),
		gradW:  tensor.New(outC, inC, kernel, kernel),
		gradB:  tensor.New(outC),
	}
	fanIn := float64(inC * kernel * kernel)
	limit := math.Sqrt(6.0 / fanIn)
	c.weight.FillUniform(rng, -limit, limit)
	return c
}

// OutSize returns the spatial output size for a given input size.
func (c *Conv2D) OutSize(in int) int {
	return (in+2*c.Pad-c.Kernel)/c.Stride + 1
}

func (c *Conv2D) setScratch(p *tensor.Pool) { c.scratch = p }

// stageConvBufs refills the persistent buffer holders of a convolution
// layer from its scratch pool: one patch buffer per parallel chunk and,
// when dwSize > 0, one weight-gradient partial per sample. Both Conv2D and
// ConvTranspose2D stage through this one helper.
func stageConvBufs(pool *tensor.Pool, colsBufs, dwBufs [][]float64, batch, colsSize, dwSize int) (cols, dw [][]float64) {
	nch := tensor.ChunkCount(batch, 1)
	colsBufs = colsBufs[:0]
	for i := 0; i < nch; i++ {
		colsBufs = append(colsBufs, pool.Get(colsSize))
	}
	dwBufs = dwBufs[:0]
	if dwSize > 0 {
		for i := 0; i < batch; i++ {
			dwBufs = append(dwBufs, pool.Get(dwSize))
		}
	}
	return colsBufs, dwBufs
}

// reduceConvPartials folds the per-sample weight-gradient partials and the
// per-sample bias-gradient sums into gradW/gradB in batch order, the fixed
// reduction both convolution layers rely on for worker-count invariance.
func reduceConvPartials(gradW, gradB []float64, dwBufs [][]float64, grad []float64, batch, outC, oHW int) {
	for b := 0; b < batch; b++ {
		dwb := dwBufs[b]
		for i := range gradW {
			gradW[i] += dwb[i]
		}
		gb := grad[b*outC*oHW : (b+1)*outC*oHW]
		for oc := 0; oc < outC; oc++ {
			sum := gradB[oc]
			for _, v := range gb[oc*oHW : (oc+1)*oHW] {
				sum += v
			}
			gradB[oc] = sum
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		c.lastInput = x
	}
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if inC != c.InC {
		panic(fmt.Sprintf("nn: conv input channels %d, want %d", inC, c.InC))
	}
	outH, outW := c.OutSize(h), c.OutSize(w)
	oHW := outH * outW
	ck2 := inC * c.Kernel * c.Kernel
	out := c.scratch.GetTensor(batch, c.OutC, outH, outW)
	c.colsBufs, c.dwBufs = stageConvBufs(c.scratch, c.colsBufs, c.dwBufs, batch, ck2*oHW, 0)
	if len(c.colsBufs) == 1 {
		c.forwardChunk(x, out, 0, batch, 0) // no closure on the serial path
	} else {
		tensor.ParallelForChunksCap(batch, 1, len(c.colsBufs), func(lo, hi, ch int) {
			c.forwardChunk(x, out, lo, hi, ch)
		})
	}
	return out
}

// forwardChunk runs the GEMM-lowered forward pass for samples [lo, hi)
// using the chunk's staged patch buffer.
func (c *Conv2D) forwardChunk(x, out *tensor.Tensor, lo, hi, ch int) {
	inC, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := out.Shape[2], out.Shape[3]
	oHW := outH * outW
	k, s, p := c.Kernel, c.Stride, c.Pad
	ck2 := inC * k * k
	cols := c.colsBufs[ch]
	for b := lo; b < hi; b++ {
		im2col(cols, x.Data[b*inC*h*w:(b+1)*inC*h*w], inC, h, w, k, s, p, outH, outW)
		ob := out.Data[b*c.OutC*oHW : (b+1)*c.OutC*oHW]
		for oc := 0; oc < c.OutC; oc++ {
			row := ob[oc*oHW : (oc+1)*oHW]
			bv := c.bias.Data[oc]
			for i := range row {
				row[i] = bv
			}
		}
		tensor.GemmNN(ob, c.weight.Data, cols, c.OutC, ck2, oHW, true)
	}
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := grad.Shape[2], grad.Shape[3]
	oHW := outH * outW
	ck2 := inC * c.Kernel * c.Kernel
	dx := c.scratch.GetTensor(batch, inC, h, w)
	c.colsBufs, c.dwBufs = stageConvBufs(c.scratch, c.colsBufs, c.dwBufs, batch, ck2*oHW, c.OutC*ck2)
	if len(c.colsBufs) == 1 {
		c.backwardChunk(x, grad, dx, 0, batch, 0)
	} else {
		tensor.ParallelForChunksCap(batch, 1, len(c.colsBufs), func(lo, hi, ch int) {
			c.backwardChunk(x, grad, dx, lo, hi, ch)
		})
	}
	reduceConvPartials(c.gradW.Data, c.gradB.Data, c.dwBufs, grad.Data, batch, c.OutC, oHW)
	return dx
}

// backwardChunk runs the GEMM-lowered backward pass for samples [lo, hi):
// the sample's weight-gradient partial, then the input gradient via
// col2im of weightᵀ times the output gradient.
func (c *Conv2D) backwardChunk(x, grad, dx *tensor.Tensor, lo, hi, ch int) {
	inC, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := grad.Shape[2], grad.Shape[3]
	oHW := outH * outW
	k, s, p := c.Kernel, c.Stride, c.Pad
	ck2 := inC * k * k
	cols := c.colsBufs[ch]
	for b := lo; b < hi; b++ {
		im2col(cols, x.Data[b*inC*h*w:(b+1)*inC*h*w], inC, h, w, k, s, p, outH, outW)
		gb := grad.Data[b*c.OutC*oHW : (b+1)*c.OutC*oHW]
		// dW_b = dOut_b · colsᵀ, into this sample's partial.
		tensor.GemmNT(c.dwBufs[b], gb, cols, c.OutC, oHW, ck2, false)
		// dCols = weightᵀ · dOut_b, overwriting the patch buffer.
		tensor.GemmTN(cols, c.weight.Data, gb, ck2, c.OutC, oHW, false)
		col2im(dx.Data[b*inC*h*w:(b+1)*inC*h*w], cols, inC, h, w, k, s, p, outH, outW)
	}
}

// forwardNaive is the original 7-deep scalar-loop forward pass, retained as
// the reference the GEMM lowering is tested against.
func (c *Conv2D) forwardNaive(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		c.lastInput = x
	}
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if inC != c.InC {
		panic(fmt.Sprintf("nn: conv input channels %d, want %d", inC, c.InC))
	}
	outH, outW := c.OutSize(h), c.OutSize(w)
	out := tensor.New(batch, c.OutC, outH, outW)
	k, s, p := c.Kernel, c.Stride, c.Pad

	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			bv := c.bias.Data[oc]
			for oh := 0; oh < outH; oh++ {
				ihBase := oh*s - p
				for ow := 0; ow < outW; ow++ {
					iwBase := ow*s - p
					sum := bv
					for ic := 0; ic < inC; ic++ {
						xBase := ((b*inC + ic) * h) * w
						wBase := ((oc*inC + ic) * k) * k
						for kh := 0; kh < k; kh++ {
							ih := ihBase + kh
							if ih < 0 || ih >= h {
								continue
							}
							xRow := xBase + ih*w
							wRow := wBase + kh*k
							for kw := 0; kw < k; kw++ {
								iw := iwBase + kw
								if iw < 0 || iw >= w {
									continue
								}
								sum += x.Data[xRow+iw] * c.weight.Data[wRow+kw]
							}
						}
					}
					out.Data[((b*c.OutC+oc)*outH+oh)*outW+ow] = sum
				}
			}
		}
	}
	return out
}

// backwardNaive is the original scalar-loop backward pass, retained as the
// reference the GEMM lowering is tested against.
func (c *Conv2D) backwardNaive(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := grad.Shape[2], grad.Shape[3]
	dx := tensor.New(batch, inC, h, w)
	k, s, p := c.Kernel, c.Stride, c.Pad

	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oh := 0; oh < outH; oh++ {
				ihBase := oh*s - p
				for ow := 0; ow < outW; ow++ {
					iwBase := ow*s - p
					g := grad.Data[((b*c.OutC+oc)*outH+oh)*outW+ow]
					if g == 0 {
						continue
					}
					c.gradB.Data[oc] += g
					for ic := 0; ic < inC; ic++ {
						xBase := ((b*inC + ic) * h) * w
						wBase := ((oc*inC + ic) * k) * k
						for kh := 0; kh < k; kh++ {
							ih := ihBase + kh
							if ih < 0 || ih >= h {
								continue
							}
							xRow := xBase + ih*w
							wRow := wBase + kh*k
							for kw := 0; kw < k; kw++ {
								iw := iwBase + kw
								if iw < 0 || iw >= w {
									continue
								}
								c.gradW.Data[wRow+kw] += g * x.Data[xRow+iw]
								dx.Data[xRow+iw] += g * c.weight.Data[wRow+kw]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weight, c.bias} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC:    c.InC,
		OutC:   c.OutC,
		Kernel: c.Kernel,
		Stride: c.Stride,
		Pad:    c.Pad,
		weight: c.weight.Clone(),
		bias:   c.bias.Clone(),
		gradW:  tensor.New(c.OutC, c.InC, c.Kernel, c.Kernel),
		gradB:  tensor.New(c.OutC),
	}
}

// ConvTranspose2D is a 2-D transposed convolution (fractionally strided
// convolution) over batched inputs [batch, inC, H, W], producing
// [batch, outC, outH, outW] with outH = (H−1)*stride − 2*pad + kernel.
//
// The DFA-G generator follows the WGAN recipe cited by the paper: two
// transposed convolutions upsample a latent noise block into an image.
//
// Like Conv2D, both passes are GEMM-lowered: the forward pass col2im-scatters
// weightᵀ·x, the backward pass im2col-expands the output gradient. The
// original scatter loops are retained as forwardNaive/backwardNaive.
type ConvTranspose2D struct {
	InC, OutC   int
	Kernel      int
	Stride, Pad int

	weight *tensor.Tensor // [inC, outC, k, k]
	bias   *tensor.Tensor // [outC]
	gradW  *tensor.Tensor
	gradB  *tensor.Tensor

	lastInput *tensor.Tensor

	scratch  *tensor.Pool
	colsBufs [][]float64
	dwBufs   [][]float64
}

var _ Layer = (*ConvTranspose2D)(nil)

// NewConvTranspose2D creates a transposed-convolution layer with He-uniform
// initialized weights.
func NewConvTranspose2D(rng *rand.Rand, inC, outC, kernel, stride, pad int) *ConvTranspose2D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid convT config kernel=%d stride=%d pad=%d", kernel, stride, pad))
	}
	c := &ConvTranspose2D{
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
		weight: tensor.New(inC, outC, kernel, kernel),
		bias:   tensor.New(outC),
		gradW:  tensor.New(inC, outC, kernel, kernel),
		gradB:  tensor.New(outC),
	}
	fanIn := float64(inC * kernel * kernel)
	limit := math.Sqrt(6.0 / fanIn)
	c.weight.FillUniform(rng, -limit, limit)
	return c
}

// OutSize returns the spatial output size for a given input size.
func (c *ConvTranspose2D) OutSize(in int) int {
	return (in-1)*c.Stride - 2*c.Pad + c.Kernel
}

func (c *ConvTranspose2D) setScratch(p *tensor.Pool) { c.scratch = p }

// Forward implements Layer.
func (c *ConvTranspose2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		c.lastInput = x
	}
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if inC != c.InC {
		panic(fmt.Sprintf("nn: convT input channels %d, want %d", inC, c.InC))
	}
	outH, outW := c.OutSize(h), c.OutSize(w)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: convT output size %dx%d not positive", outH, outW))
	}
	hw := h * w
	ock2 := c.OutC * c.Kernel * c.Kernel
	out := c.scratch.GetTensor(batch, c.OutC, outH, outW)
	c.colsBufs, c.dwBufs = stageConvBufs(c.scratch, c.colsBufs, c.dwBufs, batch, ock2*hw, 0)
	if len(c.colsBufs) == 1 {
		c.forwardChunk(x, out, 0, batch, 0)
	} else {
		tensor.ParallelForChunksCap(batch, 1, len(c.colsBufs), func(lo, hi, ch int) {
			c.forwardChunk(x, out, lo, hi, ch)
		})
	}
	return out
}

// forwardChunk runs the GEMM-lowered forward scatter for samples [lo, hi).
func (c *ConvTranspose2D) forwardChunk(x, out *tensor.Tensor, lo, hi, ch int) {
	inC, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := out.Shape[2], out.Shape[3]
	k, s, p := c.Kernel, c.Stride, c.Pad
	hw := h * w
	oHW := outH * outW
	ock2 := c.OutC * k * k
	cols := c.colsBufs[ch]
	for b := lo; b < hi; b++ {
		// cols = weightᵀ · x_b over [inC, outC·k²] × [inC, hw].
		tensor.GemmTN(cols, c.weight.Data, x.Data[b*inC*hw:(b+1)*inC*hw], ock2, inC, hw, false)
		ob := out.Data[b*c.OutC*oHW : (b+1)*c.OutC*oHW]
		for oc := 0; oc < c.OutC; oc++ {
			row := ob[oc*oHW : (oc+1)*oHW]
			bv := c.bias.Data[oc]
			for i := range row {
				row[i] = bv
			}
		}
		col2im(ob, cols, c.OutC, outH, outW, k, s, p, h, w)
	}
}

// Backward implements Layer.
func (c *ConvTranspose2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := grad.Shape[2], grad.Shape[3]
	hw := h * w
	oHW := outH * outW
	ock2 := c.OutC * c.Kernel * c.Kernel
	dx := c.scratch.GetTensor(batch, inC, h, w)
	c.colsBufs, c.dwBufs = stageConvBufs(c.scratch, c.colsBufs, c.dwBufs, batch, ock2*hw, inC*ock2)
	if len(c.colsBufs) == 1 {
		c.backwardChunk(x, grad, dx, 0, batch, 0)
	} else {
		tensor.ParallelForChunksCap(batch, 1, len(c.colsBufs), func(lo, hi, ch int) {
			c.backwardChunk(x, grad, dx, lo, hi, ch)
		})
	}
	reduceConvPartials(c.gradW.Data, c.gradB.Data, c.dwBufs, grad.Data, batch, c.OutC, oHW)
	return dx
}

// backwardChunk runs the GEMM-lowered backward pass for samples [lo, hi):
// im2col of the output gradient, then the sample's weight-gradient partial
// and the input gradient.
func (c *ConvTranspose2D) backwardChunk(x, grad, dx *tensor.Tensor, lo, hi, ch int) {
	inC, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := grad.Shape[2], grad.Shape[3]
	k, s, p := c.Kernel, c.Stride, c.Pad
	hw := h * w
	oHW := outH * outW
	ock2 := c.OutC * k * k
	cols := c.colsBufs[ch]
	for b := lo; b < hi; b++ {
		// dCols = im2col(dOut_b) with the layer's geometry reversed:
		// output positions of the scatter are the input positions here.
		im2col(cols, grad.Data[b*c.OutC*oHW:(b+1)*c.OutC*oHW], c.OutC, outH, outW, k, s, p, h, w)
		xb := x.Data[b*inC*hw : (b+1)*inC*hw]
		// dW_b = x_b · dColsᵀ.
		tensor.GemmNT(c.dwBufs[b], xb, cols, inC, hw, ock2, false)
		// dx_b = weight · dCols.
		tensor.GemmNN(dx.Data[b*inC*hw:(b+1)*inC*hw], c.weight.Data, cols, inC, ock2, hw, false)
	}
}

// forwardNaive is the original scatter-loop forward pass, retained as the
// reference the GEMM lowering is tested against.
func (c *ConvTranspose2D) forwardNaive(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		c.lastInput = x
	}
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if inC != c.InC {
		panic(fmt.Sprintf("nn: convT input channels %d, want %d", inC, c.InC))
	}
	outH, outW := c.OutSize(h), c.OutSize(w)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: convT output size %dx%d not positive", outH, outW))
	}
	out := tensor.New(batch, c.OutC, outH, outW)
	k, s, p := c.Kernel, c.Stride, c.Pad

	// Bias.
	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := ((b*c.OutC + oc) * outH) * outW
			bv := c.bias.Data[oc]
			for i := 0; i < outH*outW; i++ {
				out.Data[base+i] = bv
			}
		}
	}
	// Scatter contributions.
	for b := 0; b < batch; b++ {
		for ic := 0; ic < inC; ic++ {
			xBase := ((b*inC + ic) * h) * w
			for ih := 0; ih < h; ih++ {
				ohBase := ih*s - p
				for iw := 0; iw < w; iw++ {
					xv := x.Data[xBase+ih*w+iw]
					if xv == 0 {
						continue
					}
					owBase := iw*s - p
					for oc := 0; oc < c.OutC; oc++ {
						oBase := ((b*c.OutC + oc) * outH) * outW
						wBase := ((ic*c.OutC + oc) * k) * k
						for kh := 0; kh < k; kh++ {
							oh := ohBase + kh
							if oh < 0 || oh >= outH {
								continue
							}
							oRow := oBase + oh*outW
							wRow := wBase + kh*k
							for kw := 0; kw < k; kw++ {
								ow := owBase + kw
								if ow < 0 || ow >= outW {
									continue
								}
								out.Data[oRow+ow] += xv * c.weight.Data[wRow+kw]
							}
						}
					}
				}
			}
		}
	}
	return out
}

// backwardNaive is the original scalar-loop backward pass, retained as the
// reference the GEMM lowering is tested against.
func (c *ConvTranspose2D) backwardNaive(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	batch, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := grad.Shape[2], grad.Shape[3]
	dx := tensor.New(batch, inC, h, w)
	k, s, p := c.Kernel, c.Stride, c.Pad

	// Bias gradient.
	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := ((b*c.OutC + oc) * outH) * outW
			sum := 0.0
			for i := 0; i < outH*outW; i++ {
				sum += grad.Data[base+i]
			}
			c.gradB.Data[oc] += sum
		}
	}
	// Weight and input gradients: mirror the forward scatter.
	for b := 0; b < batch; b++ {
		for ic := 0; ic < inC; ic++ {
			xBase := ((b*inC + ic) * h) * w
			for ih := 0; ih < h; ih++ {
				ohBase := ih*s - p
				for iw := 0; iw < w; iw++ {
					owBase := iw*s - p
					xv := x.Data[xBase+ih*w+iw]
					var dxv float64
					for oc := 0; oc < c.OutC; oc++ {
						oBase := ((b*c.OutC + oc) * outH) * outW
						wBase := ((ic*c.OutC + oc) * k) * k
						for kh := 0; kh < k; kh++ {
							oh := ohBase + kh
							if oh < 0 || oh >= outH {
								continue
							}
							oRow := oBase + oh*outW
							wRow := wBase + kh*k
							for kw := 0; kw < k; kw++ {
								ow := owBase + kw
								if ow < 0 || ow >= outW {
									continue
								}
								g := grad.Data[oRow+ow]
								c.gradW.Data[wRow+kw] += g * xv
								dxv += g * c.weight.Data[wRow+kw]
							}
						}
					}
					dx.Data[xBase+ih*w+iw] = dxv
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *ConvTranspose2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weight, c.bias} }

// Grads implements Layer.
func (c *ConvTranspose2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// Clone implements Layer.
func (c *ConvTranspose2D) Clone() Layer {
	return &ConvTranspose2D{
		InC:    c.InC,
		OutC:   c.OutC,
		Kernel: c.Kernel,
		Stride: c.Stride,
		Pad:    c.Pad,
		weight: c.weight.Clone(),
		bias:   c.bias.Clone(),
		gradW:  tensor.New(c.InC, c.OutC, c.Kernel, c.Kernel),
		gradB:  tensor.New(c.OutC),
	}
}
