package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// lossOf evaluates the mean cross-entropy of the network on (x, labels)
// without caching activations.
func lossOf(n *Network, x *tensor.Tensor, labels []int) float64 {
	loss, _ := CrossEntropy(n.Forward(x, false), labels)
	return loss
}

// checkParamGradients compares analytic parameter gradients against central
// finite differences on a random subset of coordinates.
func checkParamGradients(t *testing.T, n *Network, x *tensor.Tensor, labels []int, rng *rand.Rand) {
	t.Helper()
	n.ZeroGrads()
	logits := n.Forward(x, true)
	_, g := CrossEntropy(logits, labels)
	n.Backward(g)

	const eps = 1e-5
	const tol = 1e-4
	for pi, p := range n.Params() {
		grad := n.Grads()[pi]
		checks := 12
		if p.Len() < checks {
			checks = p.Len()
		}
		for c := 0; c < checks; c++ {
			i := rng.Intn(p.Len())
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := lossOf(n, x, labels)
			p.Data[i] = orig - eps
			lm := lossOf(n, x, labels)
			p.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := grad.Data[i]
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > tol {
				t.Errorf("param %d coord %d: analytic %.8f vs numeric %.8f", pi, i, analytic, numeric)
			}
		}
	}
}

// checkInputGradients compares the gradient w.r.t. the network input (the
// path DFA uses to optimize synthetic images through the frozen classifier)
// against finite differences.
func checkInputGradients(t *testing.T, n *Network, x *tensor.Tensor, labels []int, rng *rand.Rand) {
	t.Helper()
	n.ZeroGrads()
	logits := n.Forward(x, true)
	_, g := CrossEntropy(logits, labels)
	dx := n.Backward(g)

	const eps = 1e-5
	const tol = 1e-4
	for c := 0; c < 20; c++ {
		i := rng.Intn(x.Len())
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(n, x, labels)
		x.Data[i] = orig - eps
		lm := lossOf(n, x, labels)
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := dx.Data[i]
		diff := math.Abs(numeric - analytic)
		scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
		if diff/scale > tol {
			t.Errorf("input coord %d: analytic %.8f vs numeric %.8f", i, analytic, numeric)
		}
	}
}

func randBatch(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	x.FillNormal(rng, 0, 1)
	return x
}

func randLabels(rng *rand.Rand, batch, classes int) []int {
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return labels
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := NewNetwork(NewDense(rng, 6, 5), NewReLU(), NewDense(rng, 5, 4))
	x := randBatch(rng, 3, 6)
	labels := randLabels(rng, 3, 4)
	checkParamGradients(t, n, x, labels, rng)
	checkInputGradients(t, n, x, labels, rng)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := NewNetwork(
		NewConv2D(rng, 2, 3, 3, 1, 1),
		NewReLU(),
		NewConv2D(rng, 3, 4, 3, 2, 1),
		NewFlatten(),
		NewDense(rng, 4*3*3, 3),
	)
	x := randBatch(rng, 2, 2, 6, 6)
	labels := randLabels(rng, 2, 3)
	checkParamGradients(t, n, x, labels, rng)
	checkInputGradients(t, n, x, labels, rng)
}

func TestConvTranspose2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewNetwork(
		NewConvTranspose2D(rng, 2, 3, 4, 2, 1), // 3x3 -> 6x6
		NewLeakyReLU(0.2),
		NewConv2D(rng, 3, 2, 3, 1, 1),
		NewTanh(),
		NewFlatten(),
		NewDense(rng, 2*6*6, 4),
	)
	x := randBatch(rng, 2, 2, 3, 3)
	labels := randLabels(rng, 2, 4)
	checkParamGradients(t, n, x, labels, rng)
	checkInputGradients(t, n, x, labels, rng)
}

func TestFashionCNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewFashionCNN(rng, 1, 8, 5)
	x := randBatch(rng, 2, 1, 8, 8)
	labels := randLabels(rng, 2, 5)
	checkParamGradients(t, n, x, labels, rng)
	checkInputGradients(t, n, x, labels, rng)
}

func TestGeneratorGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// A generator followed by a small classifier head: the exact structure of
	// the DFA-G optimization (gradients flow through the frozen classifier
	// into the generator parameters).
	gen := NewGenerator(rng, 1, 8)
	head := NewNetwork(NewFlatten(), NewDense(rng, 64, 3))
	combined := NewNetwork(append(append([]Layer{}, gen.Layers()...), head.Layers()...)...)
	c, h, w := GeneratorLatentSize(8)
	x := randBatch(rng, 2, c, h, w)
	labels := randLabels(rng, 2, 3)
	checkParamGradients(t, combined, x, labels, rng)
	checkInputGradients(t, combined, x, labels, rng)
}

func TestSoftCrossEntropyGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := NewNetwork(NewDense(rng, 5, 4))
	x := randBatch(rng, 3, 5)
	target := UniformTarget(4)

	n.ZeroGrads()
	logits := n.Forward(x, true)
	_, g := CrossEntropySoft(logits, target)
	n.Backward(g)

	const eps = 1e-5
	p := n.Params()[0]
	grad := n.Grads()[0]
	for c := 0; c < 10; c++ {
		i := rng.Intn(p.Len())
		orig := p.Data[i]
		p.Data[i] = orig + eps
		lp, _ := CrossEntropySoft(n.Forward(x, false), target)
		p.Data[i] = orig - eps
		lm, _ := CrossEntropySoft(n.Forward(x, false), target)
		p.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-grad.Data[i]) > 1e-4 {
			t.Errorf("soft CE coord %d: analytic %.8f vs numeric %.8f", i, grad.Data[i], numeric)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	logits := randBatch(rng, 4, 7)
	logits.ScaleInPlace(50) // stress numerical stability
	probs := Softmax(logits)
	for b := 0; b < 4; b++ {
		sum := 0.0
		for j := 0; j < 7; j++ {
			v := probs.At(b, j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax prob out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("softmax row %d sums to %v", b, sum)
		}
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float64{100, 0, 0, 0, 100, 0}, 2, 3)
	loss, _ := CrossEntropy(logits, []int{0, 1})
	if loss > 1e-6 {
		t.Fatalf("loss of perfect prediction = %v, want ~0", loss)
	}
	lossWrong, _ := CrossEntropy(logits, []int{1, 0})
	if lossWrong < 10 {
		t.Fatalf("loss of confident wrong prediction = %v, want large", lossWrong)
	}
}

func TestUniformTargetSoftCEAtUniformIsLogL(t *testing.T) {
	// When the model outputs the uniform distribution, the soft CE against
	// the uniform target equals ln(L) — the optimum of DFA-R's objective.
	logits := tensor.New(2, 10) // all-zero logits -> uniform softmax
	loss, _ := CrossEntropySoft(logits, UniformTarget(10))
	if math.Abs(loss-math.Log(10)) > 1e-9 {
		t.Fatalf("uniform soft CE = %v, want ln(10) = %v", loss, math.Log(10))
	}
}

func TestPredict(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 3, 2, 9, 0, 1}, 2, 3)
	got := Predict(logits)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Predict = %v, want [1 0]", got)
	}
}

func TestWeightVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := NewFashionCNN(rng, 1, 8, 10)
	v := n.WeightVector()
	if len(v) != n.NumParams() {
		t.Fatalf("WeightVector length %d, want %d", len(v), n.NumParams())
	}
	m := NewFashionCNN(rand.New(rand.NewSource(99)), 1, 8, 10)
	if err := m.SetWeightVector(v); err != nil {
		t.Fatal(err)
	}
	v2 := m.WeightVector()
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, v[i], v2[i])
		}
	}
	// Networks with equal weights produce equal logits.
	x := randBatch(rng, 2, 1, 8, 8)
	a := n.Forward(x, false)
	b := m.Forward(x, false)
	if !tensor.Equal(a, b, 0) {
		t.Fatal("equal weights should give identical outputs")
	}
}

func TestSetWeightVectorLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := NewNetwork(NewDense(rng, 3, 2))
	if err := n.SetWeightVector(make([]float64, 5)); err == nil {
		t.Fatal("expected error for wrong-length weight vector")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := NewFashionCNN(rng, 1, 8, 10)
	c := n.Clone()
	v := n.WeightVector()
	cv := c.WeightVector()
	for i := range v {
		if v[i] != cv[i] {
			t.Fatal("clone should copy weights")
		}
	}
	// Training the clone must not touch the original.
	x := randBatch(rng, 4, 1, 8, 8)
	labels := randLabels(rng, 4, 10)
	TrainBatch(c, NewSGD(0.1, 0), x, labels)
	v2 := n.WeightVector()
	for i := range v {
		if v[i] != v2[i] {
			t.Fatal("training clone mutated original network")
		}
	}
	// And the clone itself must have changed.
	cv2 := c.WeightVector()
	changed := false
	for i := range cv {
		if cv[i] != cv2[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("training did not change clone weights")
	}
}

func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := NewNetwork(NewDense(rng, 4, 16), NewReLU(), NewDense(rng, 16, 3))
	opt := NewSGD(0.1, 0.9)
	// Linearly separable three-class problem.
	x := tensor.New(30, 4)
	labels := make([]int, 30)
	for i := 0; i < 30; i++ {
		c := i % 3
		labels[i] = c
		for j := 0; j < 4; j++ {
			x.Set(rng.NormFloat64()*0.1, i, j)
		}
		x.Set(x.At(i, c)+2.0, i, c)
	}
	first := lossOf(n, x, labels)
	var last float64
	for e := 0; e < 60; e++ {
		last = TrainBatch(n, opt, x, labels)
	}
	if last > first/4 {
		t.Fatalf("SGD failed to learn: first loss %.4f, last loss %.4f", first, last)
	}
	preds := Predict(n.Forward(x, false))
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	if correct < 27 {
		t.Fatalf("only %d/30 correct after training", correct)
	}
}

func TestAddToGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n := NewNetwork(NewDense(rng, 2, 2))
	n.ZeroGrads()
	delta := make([]float64, n.NumParams())
	for i := range delta {
		delta[i] = float64(i)
	}
	if err := n.AddToGrads(delta); err != nil {
		t.Fatal(err)
	}
	gv := n.GradVector()
	for i := range delta {
		if gv[i] != delta[i] {
			t.Fatalf("grad[%d] = %v, want %v", i, gv[i], delta[i])
		}
	}
	if err := n.AddToGrads(make([]float64, 3)); err == nil {
		t.Fatal("expected error for wrong-length delta")
	}
}

func TestConvOutSize(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tests := []struct {
		in, k, s, p, want int
	}{
		{16, 3, 1, 1, 16},
		{16, 3, 2, 1, 8},
		{8, 3, 2, 1, 4},
		{5, 3, 1, 0, 3},
	}
	for _, tc := range tests {
		c := NewConv2D(rng, 1, 1, tc.k, tc.s, tc.p)
		if got := c.OutSize(tc.in); got != tc.want {
			t.Errorf("Conv OutSize(%d,k%d,s%d,p%d) = %d, want %d", tc.in, tc.k, tc.s, tc.p, got, tc.want)
		}
	}
	ct := NewConvTranspose2D(rng, 1, 1, 4, 2, 1)
	if got := ct.OutSize(4); got != 8 {
		t.Errorf("ConvT OutSize(4) = %d, want 8", got)
	}
	// Conv with stride 2 then convT with stride 2 restores the size.
	if got := ct.OutSize(NewConv2D(rng, 1, 1, 4, 2, 1).OutSize(16)); got != 16 {
		t.Errorf("round trip size = %d, want 16", got)
	}
}

func TestZooArchitectures(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	fash := NewFashionCNN(rng, 1, 16, 10)
	out := fash.Forward(randBatch(rng, 2, 1, 16, 16), false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("FashionCNN output shape %v", out.Shape)
	}
	deep := NewDeepCNN(rng, 3, 16, 10)
	out = deep.Forward(randBatch(rng, 2, 3, 16, 16), false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("DeepCNN output shape %v", out.Shape)
	}
	gen := NewGenerator(rng, 3, 16)
	c, h, w := GeneratorLatentSize(16)
	img := gen.Forward(randBatch(rng, 2, c, h, w), false)
	if img.Shape[0] != 2 || img.Shape[1] != 3 || img.Shape[2] != 16 || img.Shape[3] != 16 {
		t.Fatalf("Generator output shape %v", img.Shape)
	}
	for _, v := range img.Data {
		if v < -1 || v > 1 {
			t.Fatalf("generator pixel %v outside [-1,1]", v)
		}
	}
}

func TestLayerCountsMatchPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	countTypes := func(n *Network) (convs, denses int) {
		for _, l := range n.Layers() {
			switch l.(type) {
			case *Conv2D:
				convs++
			case *Dense:
				denses++
			}
		}
		return convs, denses
	}
	convs, denses := countTypes(NewFashionCNN(rng, 1, 16, 10))
	if convs != 2 || denses != 1 {
		t.Errorf("FashionCNN has %d convs and %d denses, paper uses 2 and 1", convs, denses)
	}
	convs, denses = countTypes(NewDeepCNN(rng, 3, 16, 10))
	if convs != 6 || denses != 2 {
		t.Errorf("DeepCNN has %d convs and %d denses, paper uses 6 and 2", convs, denses)
	}
}
