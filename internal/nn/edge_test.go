package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestCrossEntropyLabelOutOfRangePanics(t *testing.T) {
	logits := tensor.New(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	CrossEntropy(logits, []int{7})
}

func TestCrossEntropyLabelCountMismatchPanics(t *testing.T) {
	logits := tensor.New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for label count mismatch")
		}
	}()
	CrossEntropy(logits, []int{0})
}

func TestSoftmaxRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank-3 logits")
		}
	}()
	Softmax(tensor.New(2, 3, 4))
}

func TestCrossEntropySoftTargetLengthPanics(t *testing.T) {
	logits := tensor.New(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-length soft target")
		}
	}()
	CrossEntropySoft(logits, []float64{0.5, 0.5})
}

func TestConvChannelMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, 3, 4, 3, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input channels")
		}
	}()
	c.Forward(tensor.New(1, 2, 8, 8), false)
}

func TestConvInvalidConfigPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero stride")
		}
	}()
	NewConv2D(rng, 1, 1, 3, 0, 1)
}

func TestConvTransposeInvalidConfigPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative padding")
		}
	}()
	NewConvTranspose2D(rng, 1, 1, 3, 1, -1)
}

// Softmax is invariant to adding a constant to every logit of a row.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64, shiftRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		shift := math.Mod(shiftRaw, 100)
		logits := tensor.New(2, 5)
		logits.FillNormal(rng, 0, 3)
		shifted := logits.Clone()
		for j := 0; j < 5; j++ {
			shifted.Data[j] += shift
		}
		a := Softmax(logits)
		b := Softmax(shifted)
		for j := 0; j < 5; j++ {
			if math.Abs(a.Data[j]-b.Data[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Gradient of CrossEntropy sums to zero per row (softmax minus one-hot).
func TestCrossEntropyGradientRowsSumToZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		batch, classes := 1+rng.Intn(4), 2+rng.Intn(6)
		logits := tensor.New(batch, classes)
		logits.FillNormal(rng, 0, 2)
		labels := make([]int, batch)
		for i := range labels {
			labels[i] = rng.Intn(classes)
		}
		_, grad := CrossEntropy(logits, labels)
		for b := 0; b < batch; b++ {
			sum := 0.0
			for j := 0; j < classes; j++ {
				sum += grad.At(b, j)
			}
			if math.Abs(sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	// On a fixed gradient, momentum must accumulate velocity: the second
	// step moves farther than the first.
	rng := rand.New(rand.NewSource(4))
	n := NewNetwork(NewDense(rng, 1, 1))
	opt := NewSGD(0.1, 0.9)
	w := n.Params()[0]
	pos0 := w.Data[0]
	step := func() float64 {
		n.ZeroGrads()
		n.Grads()[0].Data[0] = 1 // constant gradient
		n.Grads()[1].Data[0] = 0
		before := w.Data[0]
		opt.Step(n)
		return before - w.Data[0]
	}
	d1 := step()
	d2 := step()
	if d2 <= d1 {
		t.Fatalf("momentum should accelerate: step1 %v, step2 %v", d1, d2)
	}
	if w.Data[0] >= pos0 {
		t.Fatal("descent should reduce the parameter under positive gradient")
	}
}

func TestSGDStepZeroesGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := NewNetwork(NewDense(rng, 2, 2))
	x := tensor.New(1, 2)
	x.FillNormal(rng, 0, 1)
	logits := n.Forward(x, true)
	_, g := CrossEntropy(logits, []int{0})
	n.Backward(g)
	NewSGD(0.1, 0).Step(n)
	for _, gr := range n.Grads() {
		for _, v := range gr.Data {
			if v != 0 {
				t.Fatal("gradients not zeroed after Step")
			}
		}
	}
}

func TestFashionCNNSizePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size not divisible by 4")
		}
	}()
	NewFashionCNN(rng, 1, 10, 10)
}

func TestDeepCNNSizePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size not divisible by 8")
		}
	}()
	NewDeepCNN(rng, 3, 12, 10)
}

func TestGeneratorLatentSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size not divisible by 4")
		}
	}()
	GeneratorLatentSize(10)
}

// Training in train=false mode must not be possible: forward without
// caching then backward panics (nil lastInput) — documents the contract
// that Backward requires a train-mode Forward.
func TestBackwardWithoutTrainForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDense(rng, 2, 2)
	x := tensor.New(1, 2)
	d.Forward(x, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Backward without train-mode Forward")
		}
	}()
	d.Backward(tensor.New(1, 2))
}
