package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func maxRelDiff(t *testing.T, got, want *tensor.Tensor) float64 {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("size mismatch %v vs %v", got.Shape, want.Shape)
	}
	worst := 0.0
	for i := range got.Data {
		d := math.Abs(got.Data[i] - want.Data[i])
		scale := math.Max(1, math.Max(math.Abs(got.Data[i]), math.Abs(want.Data[i])))
		if r := d / scale; r > worst {
			worst = r
		}
	}
	return worst
}

// checkConvCase runs one forward+backward through the GEMM-lowered Conv2D
// and through the retained naive reference on an identically initialized
// clone, asserting outputs, input gradients and parameter gradients agree.
func checkConvCase(t *testing.T, rng *rand.Rand, batch, inC, outC, size, kernel, stride, pad int) {
	t.Helper()
	fast := NewConv2D(rng, inC, outC, kernel, stride, pad)
	slow := fast.Clone().(*Conv2D)
	pool := tensor.NewPool()
	fast.setScratch(pool)

	x := tensor.New(batch, inC, size, size)
	x.FillNormal(rng, 0, 1)
	outH := fast.OutSize(size)
	if outH <= 0 {
		t.Fatalf("invalid case: outH %d", outH)
	}
	grad := tensor.New(batch, outC, outH, outH)
	grad.FillNormal(rng, 0, 1)

	outFast := fast.Forward(x, true)
	outSlow := slow.forwardNaive(x, true)
	if d := maxRelDiff(t, outFast, outSlow); d > 1e-9 {
		t.Errorf("conv fwd b=%d c=%d→%d s=%d k=%d st=%d p=%d: rel diff %g", batch, inC, outC, size, kernel, stride, pad, d)
	}
	dxFast := fast.Backward(grad)
	dxSlow := slow.backwardNaive(grad)
	if d := maxRelDiff(t, dxFast, dxSlow); d > 1e-9 {
		t.Errorf("conv bwd dx b=%d c=%d→%d s=%d k=%d st=%d p=%d: rel diff %g", batch, inC, outC, size, kernel, stride, pad, d)
	}
	if d := maxRelDiff(t, fast.gradW, slow.gradW); d > 1e-9 {
		t.Errorf("conv bwd gradW: rel diff %g", d)
	}
	if d := maxRelDiff(t, fast.gradB, slow.gradB); d > 1e-9 {
		t.Errorf("conv bwd gradB: rel diff %g", d)
	}
}

// TestConv2DMatchesNaive covers the paper's layer shapes plus randomized
// stride/padding edge cases and the batch=1 path.
func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][7]int{
		// batch, inC, outC, size, kernel, stride, pad
		{1, 1, 8, 16, 3, 2, 1},  // FashionCNN conv1, batch=1
		{16, 1, 8, 16, 3, 2, 1}, // FashionCNN conv1
		{16, 8, 16, 8, 3, 2, 1}, // FashionCNN conv2
		{4, 3, 8, 16, 3, 1, 1},  // DeepCNN conv1
		{2, 16, 32, 8, 3, 1, 1}, // DeepCNN conv5
		{3, 2, 5, 7, 3, 1, 0},   // no padding
		{2, 2, 3, 9, 5, 2, 2},   // larger kernel
		{1, 1, 1, 4, 3, 3, 1},   // stride > kernel reach
		{2, 3, 4, 5, 5, 1, 4},   // padding wider than the image edge
		{1, 2, 2, 6, 1, 1, 0},   // 1×1 kernel
		{2, 1, 3, 5, 2, 2, 0},   // even kernel
	}
	for _, c := range cases {
		checkConvCase(t, rng, c[0], c[1], c[2], c[3], c[4], c[5], c[6])
	}
	for i := 0; i < 10; i++ {
		size := 3 + rng.Intn(10)
		kernel := 1 + rng.Intn(4)
		stride := 1 + rng.Intn(3)
		pad := rng.Intn(3)
		if (size+2*pad-kernel)/stride+1 <= 0 || size+2*pad < kernel {
			continue
		}
		checkConvCase(t, rng, 1+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(5), size, kernel, stride, pad)
	}
}

func checkConvTCase(t *testing.T, rng *rand.Rand, batch, inC, outC, size, kernel, stride, pad int) {
	t.Helper()
	fast := NewConvTranspose2D(rng, inC, outC, kernel, stride, pad)
	slow := fast.Clone().(*ConvTranspose2D)
	pool := tensor.NewPool()
	fast.setScratch(pool)

	x := tensor.New(batch, inC, size, size)
	x.FillNormal(rng, 0, 1)
	outH := fast.OutSize(size)
	if outH <= 0 {
		t.Fatalf("invalid case: outH %d", outH)
	}
	grad := tensor.New(batch, outC, outH, outH)
	grad.FillNormal(rng, 0, 1)

	outFast := fast.Forward(x, true)
	outSlow := slow.forwardNaive(x, true)
	if d := maxRelDiff(t, outFast, outSlow); d > 1e-9 {
		t.Errorf("convT fwd b=%d c=%d→%d s=%d k=%d st=%d p=%d: rel diff %g", batch, inC, outC, size, kernel, stride, pad, d)
	}
	dxFast := fast.Backward(grad)
	dxSlow := slow.backwardNaive(grad)
	if d := maxRelDiff(t, dxFast, dxSlow); d > 1e-9 {
		t.Errorf("convT bwd dx b=%d c=%d→%d s=%d k=%d st=%d p=%d: rel diff %g", batch, inC, outC, size, kernel, stride, pad, d)
	}
	if d := maxRelDiff(t, fast.gradW, slow.gradW); d > 1e-9 {
		t.Errorf("convT bwd gradW: rel diff %g", d)
	}
	if d := maxRelDiff(t, fast.gradB, slow.gradB); d > 1e-9 {
		t.Errorf("convT bwd gradB: rel diff %g", d)
	}
}

// TestConvTranspose2DMatchesNaive covers the generator's layer shapes plus
// randomized stride/padding edge cases and the batch=1 path.
func TestConvTranspose2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := [][7]int{
		{1, 8, 16, 4, 4, 2, 1},  // generator convT1, batch=1
		{20, 8, 16, 4, 4, 2, 1}, // generator convT1
		{4, 16, 8, 8, 4, 2, 1},  // generator convT2
		{2, 3, 4, 5, 3, 1, 0},   // stride 1
		{1, 2, 3, 4, 3, 3, 0},   // stride > kernel: gaps in the scatter
		{2, 2, 2, 5, 4, 2, 2},   // heavy padding trims the output
		{1, 1, 1, 3, 1, 1, 0},   // 1×1 kernel
	}
	for _, c := range cases {
		checkConvTCase(t, rng, c[0], c[1], c[2], c[3], c[4], c[5], c[6])
	}
	for i := 0; i < 8; i++ {
		size := 2 + rng.Intn(6)
		kernel := 1 + rng.Intn(4)
		stride := 1 + rng.Intn(3)
		pad := rng.Intn(2)
		if (size-1)*stride-2*pad+kernel <= 0 {
			continue
		}
		checkConvTCase(t, rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(4), size, kernel, stride, pad)
	}
}

// TestConvWorkerCountInvariance asserts a training step's gradients are
// bit-identical however many workers the batch fan-out uses.
func TestConvWorkerCountInvariance(t *testing.T) {
	defer tensor.SetWorkers(0)
	build := func() (*Conv2D, *tensor.Tensor, *tensor.Tensor) {
		rng := rand.New(rand.NewSource(5))
		l := NewConv2D(rng, 3, 8, 3, 2, 1)
		l.setScratch(tensor.NewPool())
		x := tensor.New(9, 3, 12, 12)
		x.FillNormal(rng, 0, 1)
		g := tensor.New(9, 8, l.OutSize(12), l.OutSize(12))
		g.FillNormal(rng, 0, 1)
		return l, x, g
	}
	tensor.SetWorkers(1)
	ref, x, g := build()
	refOut := ref.Forward(x, true)
	refDx := ref.Backward(g)
	for _, w := range []int{2, 3, 7} {
		tensor.SetWorkers(w)
		l, x, g := build()
		out := l.Forward(x, true)
		for i := range out.Data {
			if out.Data[i] != refOut.Data[i] {
				t.Fatalf("workers=%d: forward differs at %d", w, i)
			}
		}
		dx := l.Backward(g)
		for i := range dx.Data {
			if dx.Data[i] != refDx.Data[i] {
				t.Fatalf("workers=%d: dx differs at %d", w, i)
			}
		}
		for i := range l.gradW.Data {
			if l.gradW.Data[i] != ref.gradW.Data[i] {
				t.Fatalf("workers=%d: gradW differs at %d", w, i)
			}
		}
	}
}
