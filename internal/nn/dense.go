package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer computing y = x·W + b over batched
// rank-2 inputs of shape [batch, in].
type Dense struct {
	In, Out int

	weight *tensor.Tensor // [in, out]
	bias   *tensor.Tensor // [out]
	gradW  *tensor.Tensor
	gradB  *tensor.Tensor

	lastInput *tensor.Tensor
}

var _ Layer = (*Dense)(nil)

// NewDense creates a dense layer with He-uniform initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		In:     in,
		Out:    out,
		weight: tensor.New(in, out),
		bias:   tensor.New(out),
		gradW:  tensor.New(in, out),
		gradB:  tensor.New(out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	d.weight.FillUniform(rng, -limit, limit)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		d.lastInput = x
	}
	out := tensor.MatMul(x, d.weight)
	batch := x.Shape[0]
	for b := 0; b < batch; b++ {
		row := out.Data[b*d.Out : (b+1)*d.Out]
		for j := 0; j < d.Out; j++ {
			row[j] += d.bias.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := d.lastInput
	dW := tensor.MatMulTransA(x, grad) // [in, out]
	d.gradW.AddInPlace(dW)
	batch := grad.Shape[0]
	for b := 0; b < batch; b++ {
		row := grad.Data[b*d.Out : (b+1)*d.Out]
		for j := 0; j < d.Out; j++ {
			d.gradB.Data[j] += row[j]
		}
	}
	return tensor.MatMulTransB(grad, d.weight) // [batch, in]
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.weight, d.bias} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.gradW, d.gradB} }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		In:     d.In,
		Out:    d.Out,
		weight: d.weight.Clone(),
		bias:   d.bias.Clone(),
		gradW:  tensor.New(d.In, d.Out),
		gradB:  tensor.New(d.Out),
	}
}
