package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer computing y = x·W + b over batched
// rank-2 inputs of shape [batch, in].
type Dense struct {
	In, Out int

	weight *tensor.Tensor // [in, out]
	bias   *tensor.Tensor // [out]
	gradW  *tensor.Tensor
	gradB  *tensor.Tensor

	lastInput *tensor.Tensor
	scratch   *tensor.Pool
}

var _ Layer = (*Dense)(nil)

// NewDense creates a dense layer with He-uniform initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		In:     in,
		Out:    out,
		weight: tensor.New(in, out),
		bias:   tensor.New(out),
		gradW:  tensor.New(in, out),
		gradB:  tensor.New(out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	d.weight.FillUniform(rng, -limit, limit)
	return d
}

func (d *Dense) setScratch(p *tensor.Pool) { d.scratch = p }

// checkInput validates the shape contract the raw GEMM calls no longer
// enforce: rank-2 input whose feature width matches the layer.
func (d *Dense) checkInput(x *tensor.Tensor) {
	if len(x.Shape) != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: dense input shape %v, want [batch %d]", x.Shape, d.In))
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.checkInput(x)
	if train {
		d.lastInput = x
	}
	batch := x.Shape[0]
	out := d.scratch.GetTensor(batch, d.Out)
	tensor.GemmNN(out.Data, x.Data, d.weight.Data, batch, d.In, d.Out, false)
	for b := 0; b < batch; b++ {
		row := out.Data[b*d.Out : (b+1)*d.Out]
		for j := 0; j < d.Out; j++ {
			row[j] += d.bias.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(grad.Shape) != 2 || grad.Shape[1] != d.Out {
		panic(fmt.Sprintf("nn: dense gradient shape %v, want [batch %d]", grad.Shape, d.Out))
	}
	x := d.lastInput
	batch := grad.Shape[0]
	// gradW += xᵀ·grad, accumulated element-wise onto the existing values.
	tensor.GemmTN(d.gradW.Data, x.Data, grad.Data, d.In, batch, d.Out, true)
	for b := 0; b < batch; b++ {
		row := grad.Data[b*d.Out : (b+1)*d.Out]
		for j := 0; j < d.Out; j++ {
			d.gradB.Data[j] += row[j]
		}
	}
	dx := d.scratch.GetTensor(batch, d.In)
	tensor.GemmNT(dx.Data, grad.Data, d.weight.Data, batch, d.Out, d.In, false)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.weight, d.bias} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.gradW, d.gradB} }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		In:     d.In,
		Out:    d.Out,
		weight: d.weight.Clone(),
		bias:   d.bias.Clone(),
		gradW:  tensor.New(d.In, d.Out),
		gradB:  tensor.New(d.Out),
	}
}
