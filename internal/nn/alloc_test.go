package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestTrainBatchZeroSteadyStateAlloc locks in the scratch-arena guarantee:
// once the arena is warm, a full forward/backward/step of a training batch
// performs no heap allocation.
func TestTrainBatchZeroSteadyStateAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	// Pin to one worker: the guarantee covers the layer compute itself;
	// multi-worker fan-out adds a few goroutine-bookkeeping allocations.
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	for name, build := range map[string]func(*rand.Rand) *Network{
		"fashion": func(rng *rand.Rand) *Network { return NewFashionCNN(rng, 1, 16, 10) },
		"deep":    func(rng *rand.Rand) *Network { return NewDeepCNN(rng, 3, 16, 10) },
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			net := build(rng)
			net.SetScratch(tensor.NewPool())
			opt := NewSGD(0.05, 0)
			x := tensor.New(8, net.Layers()[0].(*Conv2D).InC, 16, 16)
			x.FillNormal(rng, 0, 1)
			labels := make([]int, 8)
			for i := range labels {
				labels[i] = rng.Intn(10)
			}
			for i := 0; i < 3; i++ { // warm the arena and the GEMM pack pools
				TrainBatch(net, opt, x, labels)
			}
			allocs := testing.AllocsPerRun(10, func() {
				TrainBatch(net, opt, x, labels)
			})
			if allocs > 0 {
				t.Errorf("steady-state TrainBatch allocates %v times per run", allocs)
			}
		})
	}
}
