package nn

import (
	"fmt"
	"math/rand"
)

// The model zoo mirrors the paper's Section IV-A: a representative shallow
// CNN with 2 convolutional layers and 1 dense layer for Fashion-MNIST, and a
// deeper CNN with 6 convolutional layers and 2 dense layers for CIFAR-10 and
// SVHN, plus the lightweight WGAN-style transposed-convolution generator
// used by DFA-G.

// NewFashionCNN builds the 2-conv/1-dense classifier used for the
// Fashion-MNIST-like task. The input is [batch, inC, size, size]; size must
// be divisible by 4.
func NewFashionCNN(rng *rand.Rand, inC, size, classes int) *Network {
	if size%4 != 0 {
		panic(fmt.Sprintf("nn: NewFashionCNN size %d must be divisible by 4", size))
	}
	s4 := size / 4
	return NewNetwork(
		NewConv2D(rng, inC, 8, 3, 2, 1), // size -> size/2
		NewReLU(),
		NewConv2D(rng, 8, 16, 3, 2, 1), // size/2 -> size/4
		NewReLU(),
		NewFlatten(),
		NewDense(rng, 16*s4*s4, classes),
	)
}

// NewDeepCNN builds the 6-conv/2-dense classifier used for the CIFAR-10-like
// and SVHN-like tasks. The input is [batch, inC, size, size]; size must be
// divisible by 8.
func NewDeepCNN(rng *rand.Rand, inC, size, classes int) *Network {
	if size%8 != 0 {
		panic(fmt.Sprintf("nn: NewDeepCNN size %d must be divisible by 8", size))
	}
	s8 := size / 8
	return NewNetwork(
		NewConv2D(rng, inC, 8, 3, 1, 1),
		NewReLU(),
		NewConv2D(rng, 8, 8, 3, 2, 1), // size -> size/2
		NewReLU(),
		NewConv2D(rng, 8, 16, 3, 1, 1),
		NewReLU(),
		NewConv2D(rng, 16, 16, 3, 2, 1), // size/2 -> size/4
		NewReLU(),
		NewConv2D(rng, 16, 32, 3, 1, 1),
		NewReLU(),
		NewConv2D(rng, 32, 32, 3, 2, 1), // size/4 -> size/8
		NewReLU(),
		NewFlatten(),
		NewDense(rng, 32*s8*s8, 64),
		NewReLU(),
		NewDense(rng, 64, classes),
	)
}

// GeneratorLatentSize returns the [channels, h, w] latent block shape the
// DFA-G generator expects for a given output image size (size must be
// divisible by 4).
func GeneratorLatentSize(size int) (c, h, w int) {
	if size%4 != 0 {
		panic(fmt.Sprintf("nn: generator output size %d must be divisible by 4", size))
	}
	return 8, size / 4, size / 4
}

// NewGenerator builds the lightweight transposed-convolution generator of
// DFA-G, following the WGAN structure cited by the paper: two transposed
// convolutional layers and one convolutional layer, with a tanh output so
// pixels land in [−1, 1]. The latent input is [batch, 8, size/4, size/4]
// (see GeneratorLatentSize) and the output is [batch, outC, size, size].
func NewGenerator(rng *rand.Rand, outC, size int) *Network {
	latentC, _, _ := GeneratorLatentSize(size)
	return NewNetwork(
		NewConvTranspose2D(rng, latentC, 16, 4, 2, 1), // size/4 -> size/2
		NewLeakyReLU(0.2),
		NewConvTranspose2D(rng, 16, 8, 4, 2, 1), // size/2 -> size
		NewLeakyReLU(0.2),
		NewConv2D(rng, 8, outC, 3, 1, 1),
		NewTanh(),
	)
}
