package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func benchNet(b *testing.B, net *Network, x *tensor.Tensor, classes int) {
	b.Helper()
	// Clients attach a scratch arena before training; benchmark the same
	// configuration.
	net.SetScratch(tensor.NewPool())
	labels := make([]int, x.Shape[0])
	opt := NewSGD(0.05, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TrainBatch(net, opt, x, labels)
	}
}

// BenchmarkFashionCNNTrainBatch measures one training step of the paper's
// 2-conv Fashion-MNIST classifier on a 16-image batch.
func BenchmarkFashionCNNTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := NewFashionCNN(rng, 1, 16, 10)
	x := tensor.New(16, 1, 16, 16)
	x.FillNormal(rng, 0, 1)
	benchNet(b, net, x, 10)
}

// BenchmarkDeepCNNTrainBatch measures one training step of the 6-conv
// CIFAR/SVHN classifier on a 16-image batch.
func BenchmarkDeepCNNTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := NewDeepCNN(rng, 3, 16, 10)
	x := tensor.New(16, 3, 16, 16)
	x.FillNormal(rng, 0, 1)
	benchNet(b, net, x, 10)
}

// BenchmarkGeneratorForward measures the DFA-G generator synthesizing a
// 20-image set.
func BenchmarkGeneratorForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	gen := NewGenerator(rng, 3, 16)
	gen.SetScratch(tensor.NewPool())
	c, h, w := GeneratorLatentSize(16)
	z := tensor.New(20, c, h, w)
	z.FillNormal(rng, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.ResetScratch()
		_ = gen.Forward(z, false)
	}
}

// BenchmarkWeightVectorRoundTrip measures the flatten/load path used on
// every federated update.
func BenchmarkWeightVectorRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	net := NewDeepCNN(rng, 3, 16, 10)
	v := net.WeightVector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = net.WeightVector()
		if err := net.SetWeightVector(v); err != nil {
			b.Fatal(err)
		}
	}
}
