package nn

import (
	"math"

	"repro/internal/tensor"
)

// cloneInto returns a pooled (or heap, without a pool) copy of x.
func cloneInto(p *tensor.Pool, x *tensor.Tensor) *tensor.Tensor {
	out := p.GetTensor(x.Shape...)
	copy(out.Data, x.Data)
	return out
}

// ReLU is the rectified-linear activation max(0, x).
type ReLU struct {
	mask    []bool
	scratch *tensor.Pool
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

func (r *ReLU) setScratch(p *tensor.Pool) { r.scratch = p }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := cloneInto(r.scratch, x)
	if train {
		if cap(r.mask) < len(out.Data) {
			r.mask = make([]bool, len(out.Data))
		}
		r.mask = r.mask[:len(out.Data)]
	}
	for i, v := range out.Data {
		pos := v > 0
		if !pos {
			out.Data[i] = 0
		}
		if train {
			r.mask[i] = pos
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := cloneInto(r.scratch, grad)
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return NewReLU() }

// LeakyReLU is the leaky rectified-linear activation used by the generator
// network: x for x > 0, alpha*x otherwise.
type LeakyReLU struct {
	Alpha float64

	mask    []bool
	scratch *tensor.Pool
}

var _ Layer = (*LeakyReLU)(nil)

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

func (r *LeakyReLU) setScratch(p *tensor.Pool) { r.scratch = p }

// Forward implements Layer.
func (r *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := cloneInto(r.scratch, x)
	if train {
		if cap(r.mask) < len(out.Data) {
			r.mask = make([]bool, len(out.Data))
		}
		r.mask = r.mask[:len(out.Data)]
	}
	for i, v := range out.Data {
		pos := v > 0
		if !pos {
			out.Data[i] = r.Alpha * v
		}
		if train {
			r.mask[i] = pos
		}
	}
	return out
}

// Backward implements Layer.
func (r *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := cloneInto(r.scratch, grad)
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] *= r.Alpha
		}
	}
	return out
}

// Params implements Layer.
func (r *LeakyReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *LeakyReLU) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (r *LeakyReLU) Clone() Layer { return NewLeakyReLU(r.Alpha) }

// Tanh is the hyperbolic-tangent activation, used as the generator's output
// nonlinearity so synthesized pixels stay in [−1, 1] like normalized images.
type Tanh struct {
	lastOutput *tensor.Tensor
	scratch    *tensor.Pool
}

var _ Layer = (*Tanh)(nil)

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

func (a *Tanh) setScratch(p *tensor.Pool) { a.scratch = p }

// Forward implements Layer.
func (a *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := cloneInto(a.scratch, x)
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	if train {
		a.lastOutput = out
	}
	return out
}

// Backward implements Layer.
func (a *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := cloneInto(a.scratch, grad)
	for i := range out.Data {
		y := a.lastOutput.Data[i]
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params implements Layer.
func (a *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (a *Tanh) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (a *Tanh) Clone() Layer { return NewTanh() }

// Flatten reshapes [batch, ...] inputs into [batch, features] and restores
// the original shape on the backward pass.
type Flatten struct {
	lastShape []int
	scratch   *tensor.Pool
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

func (f *Flatten) setScratch(p *tensor.Pool) { f.scratch = p }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.lastShape = append(f.lastShape[:0], x.Shape...)
	}
	batch := x.Shape[0]
	return f.scratch.GetView(x.Data, batch, x.Len()/batch)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return f.scratch.GetView(grad.Data, f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (f *Flatten) Clone() Layer { return NewFlatten() }
