package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Softmax returns the row-wise softmax of logits (shape [batch, classes])
// computed with the max-subtraction trick for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	return softmaxPool(nil, logits)
}

// softmaxPool is Softmax with the output drawn from a scratch arena (nil
// falls back to the heap).
func softmaxPool(p *tensor.Pool, logits *tensor.Tensor) *tensor.Tensor {
	if len(logits.Shape) != 2 {
		panic(fmt.Sprintf("nn: Softmax needs rank-2 logits, got %v", logits.Shape))
	}
	batch, classes := logits.Shape[0], logits.Shape[1]
	out := p.GetTensor(batch, classes)
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		orow := out.Data[b*classes : (b+1)*classes]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxV)
			orow[j] = e
			sum += e
		}
		inv := 1.0 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// CrossEntropy computes the mean cross-entropy loss of logits against hard
// integer labels and the gradient of that loss with respect to the logits
// (softmax(x) − onehot, scaled by 1/batch).
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	return crossEntropyPool(nil, logits, labels)
}

// crossEntropyPool is CrossEntropy with its temporaries drawn from a
// scratch arena (nil falls back to the heap).
func crossEntropyPool(p *tensor.Pool, logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	batch, classes := logits.Shape[0], logits.Shape[1]
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: CrossEntropy %d labels for batch %d", len(labels), batch))
	}
	probs := softmaxPool(p, logits)
	grad := cloneInto(p, probs)
	loss := 0.0
	invB := 1.0 / float64(batch)
	for b := 0; b < batch; b++ {
		y := labels[b]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		pv := probs.Data[b*classes+y]
		loss -= math.Log(math.Max(pv, 1e-12))
		grad.Data[b*classes+y] -= 1
	}
	grad.ScaleInPlace(invB)
	return loss * invB, grad
}

// CrossEntropySoft computes the mean cross-entropy of logits against a soft
// target distribution (shape [classes], broadcast across the batch) and the
// gradient with respect to the logits. DFA-R's objective — steering the
// global model toward the uniform output Y_D = [1/L, …, 1/L] — uses this
// with a uniform target.
func CrossEntropySoft(logits *tensor.Tensor, target []float64) (float64, *tensor.Tensor) {
	batch, classes := logits.Shape[0], logits.Shape[1]
	if len(target) != classes {
		panic(fmt.Sprintf("nn: CrossEntropySoft target length %d, want %d", len(target), classes))
	}
	probs := Softmax(logits)
	grad := probs.Clone()
	loss := 0.0
	invB := 1.0 / float64(batch)
	for b := 0; b < batch; b++ {
		row := probs.Data[b*classes : (b+1)*classes]
		grow := grad.Data[b*classes : (b+1)*classes]
		for j := 0; j < classes; j++ {
			if target[j] > 0 {
				loss -= target[j] * math.Log(math.Max(row[j], 1e-12))
			}
			grow[j] -= target[j]
		}
	}
	grad.ScaleInPlace(invB)
	return loss * invB, grad
}

// UniformTarget returns the length-L uniform distribution [1/L, …, 1/L].
func UniformTarget(classes int) []float64 {
	t := make([]float64, classes)
	for i := range t {
		t[i] = 1.0 / float64(classes)
	}
	return t
}

// Predict returns the argmax class for every row of logits.
func Predict(logits *tensor.Tensor) []int {
	batch, classes := logits.Shape[0], logits.Shape[1]
	out := make([]int, batch)
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[b] = best
	}
	return out
}

// PredictInto is Predict writing into a caller-owned slice, for evaluation
// loops that run allocation-free.
func PredictInto(dst []int, logits *tensor.Tensor) []int {
	batch, classes := logits.Shape[0], logits.Shape[1]
	dst = dst[:0]
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		dst = append(dst, best)
	}
	return dst
}
