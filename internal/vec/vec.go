// Package vec provides flat-vector math over []float64 slices.
//
// In this reproduction, as in the paper (Eq. 1–2), the currency exchanged
// between federated-learning clients and the server is the full model weight
// vector w_i(t+1). Defenses (coordinate-wise medians, trimmed means, Krum
// distances) and attacks (mean shifts, directed deviations) all operate on
// these flat vectors; this package collects those primitives.
package vec

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}

// Add returns a+b as a new vector.
func Add(a, b []float64) []float64 {
	mustSameLen("Add", a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) []float64 {
	mustSameLen("Sub", a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns s*v as a new vector.
func Scale(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// Axpy performs dst += a*x in place.
func Axpy(dst []float64, a float64, x []float64) {
	mustSameLen("Axpy", dst, x)
	for i := range dst {
		dst[i] += a * x[i]
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	mustSameLen("Dot", a, b)
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// L2Dist returns the Euclidean distance between a and b.
func L2Dist(a, b []float64) float64 {
	mustSameLen("L2Dist", a, b)
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between a and b. Krum-style
// defenses score on squared distances, so this avoids a redundant sqrt.
func SqDist(a, b []float64) float64 {
	mustSameLen("SqDist", a, b)
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Mean returns the coordinate-wise mean of the given vectors. It panics if
// vs is empty or lengths differ. The accumulation runs on the element-wise
// add kernel, which is bit-identical to the plain loop.
func Mean(vs [][]float64) []float64 {
	if len(vs) == 0 {
		panic("vec: Mean of zero vectors")
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		mustSameLen("Mean", out, v)
		tensor.AddSlice(out, v)
	}
	inv := 1.0 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// WeightedMean returns the weighted coordinate-wise mean of the given
// vectors; weights are normalized internally. It panics when vs is empty,
// lengths differ, or the total weight is not positive.
func WeightedMean(vs [][]float64, weights []float64) []float64 {
	if len(vs) == 0 {
		panic("vec: WeightedMean of zero vectors")
	}
	if len(vs) != len(weights) {
		panic(fmt.Sprintf("vec: WeightedMean %d vectors but %d weights", len(vs), len(weights)))
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("vec: WeightedMean total weight must be positive")
	}
	out := make([]float64, len(vs[0]))
	for k, v := range vs {
		mustSameLen("WeightedMean", out, v)
		w := weights[k] / total
		for i := range v {
			out[i] += w * v[i]
		}
	}
	return out
}

// Std returns the coordinate-wise population standard deviation of the given
// vectors.
func Std(vs [][]float64) []float64 {
	mean := Mean(vs)
	out := make([]float64, len(mean))
	for _, v := range vs {
		for i := range v {
			d := v[i] - mean[i]
			out[i] += d * d
		}
	}
	inv := 1.0 / float64(len(vs))
	for i := range out {
		out[i] = math.Sqrt(out[i] * inv)
	}
	return out
}

// SortSmall orders a slice sized like a federated round's per-coordinate
// column: insertion sort for small counts (where it beats the library
// sort's overhead across millions of coordinates), the library sort beyond
// that. Shared by the coordinate-wise aggregation rules.
func SortSmall(col []float64) {
	if len(col) > 32 {
		sort.Float64s(col)
		return
	}
	for i := 1; i < len(col); i++ {
		v := col[i]
		j := i - 1
		for ; j >= 0 && col[j] > v; j-- {
			col[j+1] = col[j]
		}
		col[j+1] = v
	}
}

// Median returns the coordinate-wise median of the given vectors. For an
// even count it averages the two middle values, matching the convention of
// Yin et al.'s coordinate-wise median aggregation.
func Median(vs [][]float64) []float64 {
	if len(vs) == 0 {
		panic("vec: Median of zero vectors")
	}
	n := len(vs)
	out := make([]float64, len(vs[0]))
	col := make([]float64, n)
	for i := range out {
		for k, v := range vs {
			col[k] = v[i]
		}
		SortSmall(col)
		if n%2 == 1 {
			out[i] = col[n/2]
		} else {
			out[i] = 0.5 * (col[n/2-1] + col[n/2])
		}
	}
	return out
}

// TrimmedMean returns the coordinate-wise mean after removing the trim
// largest and trim smallest values in every coordinate. It panics when
// 2*trim >= len(vs).
func TrimmedMean(vs [][]float64, trim int) []float64 {
	n := len(vs)
	if n == 0 {
		panic("vec: TrimmedMean of zero vectors")
	}
	if trim < 0 || 2*trim >= n {
		panic(fmt.Sprintf("vec: TrimmedMean trim=%d invalid for %d vectors", trim, n))
	}
	out := make([]float64, len(vs[0]))
	col := make([]float64, n)
	kept := float64(n - 2*trim)
	for i := range out {
		for k, v := range vs {
			col[k] = v[i]
		}
		SortSmall(col)
		s := 0.0
		for k := trim; k < n-trim; k++ {
			s += col[k]
		}
		out[i] = s / kept
	}
	return out
}

// MeanStdScalar returns the scalar mean and population standard deviation of
// the values.
func MeanStdScalar(values []float64) (mean, std float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	for _, v := range values {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(values)))
	return mean, std
}

// Sign returns the coordinate-wise sign of v (−1, 0 or +1).
func Sign(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		switch {
		case x > 0:
			out[i] = 1
		case x < 0:
			out[i] = -1
		}
	}
	return out
}

// Unit returns v scaled to unit Euclidean norm; the zero vector is returned
// unchanged.
func Unit(v []float64) []float64 {
	n := Norm2(v)
	if n == 0 {
		return Clone(v)
	}
	return Scale(v, 1/n)
}

// MaxPairwiseSqDist returns the maximum squared Euclidean distance between
// any two of the given vectors. It returns 0 for fewer than two vectors.
// The pairwise matrix comes from the shared distance-matrix service, so
// the distances are computed in parallel and only once.
func MaxPairwiseSqDist(vs [][]float64) float64 {
	maxD := 0.0
	for _, row := range SqDistMatrix(vs) {
		for _, d := range row {
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// NormInvCDF returns the inverse CDF (quantile function) of the standard
// normal distribution, used by the LIE attack to pick its stealth factor z.
func NormInvCDF(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("vec: NormInvCDF p=%v out of (0,1)", p))
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

func mustSameLen(op string, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: %s length mismatch %d vs %d", op, len(a), len(b)))
	}
}
