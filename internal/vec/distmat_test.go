package vec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func randVecs(rng *rand.Rand, n, dim int) [][]float64 {
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = make([]float64, dim)
		for j := range vs[i] {
			vs[i][j] = rng.NormFloat64()
		}
	}
	return vs
}

// TestSqDistMatrixMatchesNaive checks the parallel unrolled matrix against
// the sequential per-pair reference across sizes, including dimensions not
// divisible by the unroll factor.
func TestSqDistMatrixMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, dim int }{{1, 5}, {2, 1}, {3, 7}, {10, 1003}, {17, 64}} {
		vs := randVecs(rng, tc.n, tc.dim)
		m := SqDistMatrix(vs)
		for i := 0; i < tc.n; i++ {
			if m[i][i] != 0 {
				t.Fatalf("n=%d dim=%d: diagonal [%d] = %v", tc.n, tc.dim, i, m[i][i])
			}
			for j := 0; j < tc.n; j++ {
				want := SqDist(vs[i], vs[j])
				scale := math.Max(1, want)
				if math.Abs(m[i][j]-want)/scale > 1e-9 {
					t.Fatalf("n=%d dim=%d: [%d][%d] = %v, want %v", tc.n, tc.dim, i, j, m[i][j], want)
				}
				if m[i][j] != m[j][i] {
					t.Fatalf("matrix not symmetric at [%d][%d]", i, j)
				}
			}
		}
	}
}

// TestCosineMatrixMatchesNaive checks the shared cosine matrix against the
// per-pair definition.
func TestCosineMatrixMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vs := randVecs(rng, 9, 131)
	vs[4] = make([]float64, 131) // zero vector edge case
	m := CosineMatrix(vs)
	for i := range vs {
		for j := range vs {
			var want float64
			if i == j {
				want = 1
			} else {
				na, nb := Norm2(vs[i]), Norm2(vs[j])
				if na != 0 && nb != 0 {
					want = Dot(vs[i], vs[j]) / (na * nb)
				}
			}
			if math.Abs(m[i][j]-want) > 1e-9 {
				t.Fatalf("[%d][%d] = %v, want %v", i, j, m[i][j], want)
			}
		}
	}
}

// TestSqDistMatrixWorkerInvariance asserts the matrix is bit-identical for
// any worker count.
func TestSqDistMatrixWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vs := randVecs(rng, 12, 501)
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	ref := SqDistMatrix(vs)
	for _, w := range []int{2, 5, 16} {
		tensor.SetWorkers(w)
		got := SqDistMatrix(vs)
		for i := range ref {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: [%d][%d] differs", w, i, j)
				}
			}
		}
	}
}
