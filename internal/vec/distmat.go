// The shared distance-matrix service: every consumer of pairwise update
// geometry — the Krum-family scorers, Bulyan's iterative selection,
// FoolsGold's similarity matrix, the Min-Max/Min-Sum attack bounds —
// computes the round's n×n matrix once through these helpers instead of
// re-deriving O(n²·d) distances per use. Rows are fanned out over the
// tensor worker pool; per-element accumulation order is fixed, so results
// do not depend on the worker count.
package vec

import (
	"repro/internal/tensor"
)

// PairRange visits the strict upper triangle of an n×n matrix in parallel:
// fn(i, j) is called exactly once per pair i < j. Pairs are flattened so
// the fan-out is balanced even though early rows hold more pairs. The codec
// geometry kernels share this fan-out with the dense distance matrices.
func PairRange(n int, fn func(i, j int)) {
	pairs := n * (n - 1) / 2
	if pairs <= 0 {
		return
	}
	tensor.ParallelFor(pairs, 8, func(lo, hi int) {
		// Recover (i, j) from the flattened pair index: pairs are laid out
		// row-major over the upper triangle.
		i, base := 0, 0
		for base+(n-1-i) <= lo {
			base += n - 1 - i
			i++
		}
		j := i + 1 + (lo - base)
		for p := lo; p < hi; p++ {
			fn(i, j)
			j++
			if j == n {
				i++
				j = i + 1
			}
		}
	})
}

// SqDistMatrix returns the symmetric n×n matrix of pairwise squared
// Euclidean distances between the vectors, with zeros on the diagonal.
// The backing storage is one contiguous allocation.
//
// For high-dimensional vectors the computation is blocked over the
// dimension: every block of all n vectors is brought into cache once and
// all pairs consume it, so each element is streamed from memory once
// rather than once per pair. Each pair accumulates its block partials in
// ascending dimension order, so the result does not depend on the worker
// count.
func SqDistMatrix(vs [][]float64) [][]float64 {
	n := len(vs)
	m := newSquare(n)
	if n < 2 {
		return m
	}
	const dBlock = 4096
	dim := len(vs[0])
	if dim <= 2*dBlock {
		PairRange(n, func(i, j int) {
			d := tensor.SqDistSlice(vs[i], vs[j])
			m[i][j] = d
			m[j][i] = d
		})
		return m
	}
	for d0 := 0; d0 < dim; d0 += dBlock {
		d1 := d0 + dBlock
		if d1 > dim {
			d1 = dim
		}
		PairRange(n, func(i, j int) {
			m[i][j] += tensor.SqDistSlice(vs[i][d0:d1], vs[j][d0:d1])
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m[j][i] = m[i][j]
		}
	}
	return m
}

// CosineMatrix returns the symmetric n×n matrix of pairwise cosine
// similarities (1 on the diagonal, 0 against zero vectors), computing every
// norm once instead of once per pair.
func CosineMatrix(vs [][]float64) [][]float64 {
	n := len(vs)
	norms := make([]float64, n)
	tensor.ParallelFor(n, 2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			norms[i] = Norm2(vs[i])
		}
	})
	m := newSquare(n)
	for i := range m {
		m[i][i] = 1
	}
	PairRange(n, func(i, j int) {
		var s float64
		if norms[i] != 0 && norms[j] != 0 {
			s = tensor.DotSlice(vs[i], vs[j]) / (norms[i] * norms[j])
		}
		m[i][j] = s
		m[j][i] = s
	})
	return m
}

// newSquare allocates an n×n matrix over one contiguous backing slice.
func newSquare(n int) [][]float64 {
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}
