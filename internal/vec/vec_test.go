package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Add(a, b); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(a, -2); got[0] != -2 || got[2] != -6 {
		t.Fatalf("Scale = %v", got)
	}
	// Originals untouched.
	if a[0] != 1 || b[0] != 4 {
		t.Fatal("inputs mutated")
	}
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 1, 1}
	Axpy(dst, 3, []float64{1, 2, 3})
	want := []float64{4, 7, 10}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestDotNormDist(t *testing.T) {
	a := []float64{3, 4}
	b := []float64{0, 0}
	if got := Dot(a, a); got != 25 {
		t.Fatalf("Dot = %v, want 25", got)
	}
	if got := Norm2(a); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := L2Dist(a, b); got != 5 {
		t.Fatalf("L2Dist = %v, want 5", got)
	}
	if got := SqDist(a, b); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	Add([]float64{1}, []float64{1, 2})
}

func TestMean(t *testing.T) {
	vs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	got := Mean(vs)
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("Mean = %v, want [3 4]", got)
	}
}

func TestWeightedMean(t *testing.T) {
	vs := [][]float64{{0, 0}, {10, 10}}
	got := WeightedMean(vs, []float64{1, 3})
	if got[0] != 7.5 || got[1] != 7.5 {
		t.Fatalf("WeightedMean = %v, want [7.5 7.5]", got)
	}
}

func TestWeightedMeanZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive total weight")
		}
	}()
	WeightedMean([][]float64{{1}}, []float64{0})
}

func TestStd(t *testing.T) {
	vs := [][]float64{{1, 10}, {3, 10}}
	got := Std(vs)
	if !almostEqual(got[0], 1, 1e-12) {
		t.Fatalf("Std[0] = %v, want 1", got[0])
	}
	if got[1] != 0 {
		t.Fatalf("Std[1] = %v, want 0", got[1])
	}
}

func TestMedianOddEven(t *testing.T) {
	odd := [][]float64{{5}, {1}, {3}}
	if got := Median(odd); got[0] != 3 {
		t.Fatalf("odd Median = %v, want 3", got[0])
	}
	even := [][]float64{{5}, {1}, {3}, {7}}
	if got := Median(even); got[0] != 4 {
		t.Fatalf("even Median = %v, want 4", got[0])
	}
}

func TestTrimmedMean(t *testing.T) {
	vs := [][]float64{{100}, {1}, {2}, {3}, {-100}}
	if got := TrimmedMean(vs, 1); got[0] != 2 {
		t.Fatalf("TrimmedMean = %v, want 2", got[0])
	}
	// trim=0 equals plain mean.
	if got := TrimmedMean(vs, 0); got[0] != 1.2 {
		t.Fatalf("TrimmedMean(0) = %v, want 1.2", got[0])
	}
}

func TestTrimmedMeanInvalidTrim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for excessive trim")
		}
	}()
	TrimmedMean([][]float64{{1}, {2}}, 1)
}

func TestSignUnit(t *testing.T) {
	s := Sign([]float64{-3, 0, 9})
	if s[0] != -1 || s[1] != 0 || s[2] != 1 {
		t.Fatalf("Sign = %v", s)
	}
	u := Unit([]float64{3, 4})
	if !almostEqual(Norm2(u), 1, 1e-12) {
		t.Fatalf("Unit norm = %v, want 1", Norm2(u))
	}
	z := Unit([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Unit of zero = %v, want zero", z)
	}
}

func TestMaxPairwiseSqDist(t *testing.T) {
	vs := [][]float64{{0}, {3}, {1}}
	if got := MaxPairwiseSqDist(vs); got != 9 {
		t.Fatalf("MaxPairwiseSqDist = %v, want 9", got)
	}
	if got := MaxPairwiseSqDist(vs[:1]); got != 0 {
		t.Fatalf("single vector dist = %v, want 0", got)
	}
}

func TestMeanStdScalar(t *testing.T) {
	m, s := MeanStdScalar([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(m, 5, 1e-12) || !almostEqual(s, 2, 1e-12) {
		t.Fatalf("MeanStdScalar = (%v, %v), want (5, 2)", m, s)
	}
	m, s = MeanStdScalar(nil)
	if m != 0 || s != 0 {
		t.Fatal("MeanStdScalar(nil) should be (0,0)")
	}
}

func TestNormInvCDF(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.8413447, 1.0},  // Φ(1) ≈ 0.8413
		{0.9772499, 2.0},  // Φ(2) ≈ 0.9772
		{0.1586553, -1.0}, // Φ(−1)
	}
	for _, tc := range tests {
		if got := NormInvCDF(tc.p); !almostEqual(got, tc.want, 1e-4) {
			t.Errorf("NormInvCDF(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestNormInvCDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p outside (0,1)")
		}
	}()
	NormInvCDF(1)
}

// Property: the median minimizes the number of strictly greater vs strictly
// smaller values — i.e. it lies between the sorted middle elements.
func TestMedianBetweenExtremesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = []float64{rng.NormFloat64() * 10}
		}
		med := Median(vs)[0]
		sorted := make([]float64, n)
		for i, v := range vs {
			sorted[i] = v[0]
		}
		sort.Float64s(sorted)
		return med >= sorted[0] && med <= sorted[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: trimmed mean is always within [min, max] of the kept values and
// is resistant to a single arbitrarily large outlier when trim >= 1.
func TestTrimmedMeanOutlierResistanceProperty(t *testing.T) {
	f := func(seed int64, outlier float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = []float64{rng.Float64()} // all in [0,1)
		}
		vs[0][0] = 1e6 * (1 + math.Abs(outlier)) // inject outlier
		got := TrimmedMean(vs, 1)[0]
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean is linear — Mean(a·vs) == a·Mean(vs).
func TestMeanLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		d := 1 + rng.Intn(6)
		a := rng.NormFloat64()
		vs := make([][]float64, n)
		scaled := make([][]float64, n)
		for i := range vs {
			vs[i] = make([]float64, d)
			for j := range vs[i] {
				vs[i][j] = rng.NormFloat64()
			}
			scaled[i] = Scale(vs[i], a)
		}
		lhs := Mean(scaled)
		rhs := Scale(Mean(vs), a)
		for j := range lhs {
			if !almostEqual(lhs[j], rhs[j], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: L2Dist satisfies the triangle inequality.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(8)
		a, b, c := make([]float64, d), make([]float64, d), make([]float64, d)
		for i := 0; i < d; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		return L2Dist(a, c) <= L2Dist(a, b)+L2Dist(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
