package attack

import (
	"errors"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
)

// LabelFlip is the classic data-poisoning baseline (Tolpegin et al.,
// referenced in Section II-B): the adversary trains honestly on real data
// but with every label l replaced by L−1−l. Unlike DFA it requires the
// adversary to possess real task data.
type LabelFlip struct {
	// Data is the adversary's real dataset.
	Data *dataset.Dataset
	// Shard indexes the samples the adversary owns.
	Shard []int
	// LR, Epochs and BatchSize configure the local training run.
	LR        float64
	Epochs    int
	BatchSize int
}

var _ fl.Attack = (*LabelFlip)(nil)

// Name implements fl.Attack.
func (*LabelFlip) Name() string { return "labelflip" }

// Craft implements fl.Attack.
func (a *LabelFlip) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	if a.Data == nil || len(a.Shard) == 0 {
		return nil, errors.New("attack: labelflip requires real data")
	}
	model := ctx.NewModel(ctx.Rng)
	if err := model.SetWeightVector(ctx.Global); err != nil {
		return nil, err
	}
	opt := nn.NewSGD(a.LR, 0)
	idx := append([]int(nil), a.Shard...)
	batch := a.BatchSize
	if batch <= 0 {
		batch = 16
	}
	epochs := a.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	for e := 0; e < epochs; e++ {
		ctx.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			x, labels := a.Data.Batch(idx[start:end])
			for i, l := range labels {
				labels[i] = a.Data.Classes - 1 - l
			}
			nn.TrainBatch(model, opt, x, labels)
		}
	}
	return replicate(ctx, model.WeightVector(), 0), nil
}
