package attack

import (
	"repro/internal/fl"
	"repro/internal/vec"
)

// FreeRider is the free-riding behaviour of Section II-B (Fraboni et al.,
// Lin et al.): the client contributes no computation and returns the global
// model, optionally disguised with Gaussian noise so the update does not
// equal the broadcast weights bit for bit. Free-riding is not an accuracy
// attack — it dilutes the aggregate — and serves as a "weakest adversary"
// baseline for the defenses.
type FreeRider struct {
	// NoiseStd disguises the returned model; 0 returns it unchanged.
	NoiseStd float64
}

var _ fl.Attack = FreeRider{}

// Name implements fl.Attack.
func (FreeRider) Name() string { return "freerider" }

// Craft implements fl.Attack.
func (a FreeRider) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	return replicate(ctx, ctx.Global, a.NoiseStd), nil
}

// SignFlip is the reversed-gradient model poisoning of Section II-B ("submit
// updates of the reversed sign of training gradient", the core idea behind
// the Fang attack): the malicious update moves the global model in the
// direction opposite to the benign mean update, scaled by Gamma.
type SignFlip struct {
	// Gamma scales the reversed step (default 1).
	Gamma float64
}

var _ fl.Attack = SignFlip{}

// Name implements fl.Attack.
func (SignFlip) Name() string { return "signflip" }

// Craft implements fl.Attack.
func (a SignFlip) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	if len(ctx.BenignUpdates) == 0 {
		return fallback(ctx), nil
	}
	gamma := a.Gamma
	if gamma <= 0 {
		gamma = 1
	}
	mean := vec.Mean(ctx.BenignUpdates)
	step := vec.Sub(mean, ctx.Global) // benign direction of change
	mal := vec.Add(ctx.Global, vec.Scale(step, -gamma))
	return replicate(ctx, mal, 0), nil
}
