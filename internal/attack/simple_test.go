package attack

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func TestFreeRiderReturnsGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	global := []float64{1, 2, 3}
	out, err := FreeRider{}.Craft(testCtx(rng, nil, 2, global))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d vectors", len(out))
	}
	for _, v := range out {
		if vec.L2Dist(v, global) != 0 {
			t.Fatal("free rider without noise should return the global model")
		}
	}
	// Returned vectors must not alias the caller's global slice.
	out[0][0] = 99
	if global[0] == 99 {
		t.Fatal("free rider aliased the global vector")
	}
}

func TestFreeRiderNoiseDisguise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	global := []float64{1, 2, 3, 4}
	out, err := FreeRider{NoiseStd: 0.01}.Craft(testCtx(rng, nil, 2, global))
	if err != nil {
		t.Fatal(err)
	}
	d := vec.L2Dist(out[0], global)
	if d == 0 || d > 1 {
		t.Fatalf("disguise distance %v unexpected", d)
	}
	if vec.L2Dist(out[0], out[1]) == 0 {
		t.Fatal("disguised free riders should differ from each other")
	}
}

func TestSignFlipOpposesBenignStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	global := []float64{0, 0, 0}
	benign := [][]float64{{1, 2, 3}, {1.2, 1.8, 3.1}}
	out, err := SignFlip{}.Craft(testCtx(rng, benign, 1, global))
	if err != nil {
		t.Fatal(err)
	}
	mean := vec.Mean(benign)
	for j, v := range out[0] {
		// Malicious = global − (mean − global): exact mirror.
		want := -mean[j]
		if v != want {
			t.Fatalf("coord %d: got %v, want %v", j, v, want)
		}
	}
}

func TestSignFlipGammaScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	global := []float64{0, 0}
	benign := [][]float64{{2, 4}}
	out, err := SignFlip{Gamma: 3}.Craft(testCtx(rng, benign, 1, global))
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != -6 || out[0][1] != -12 {
		t.Fatalf("gamma scaling wrong: %v", out[0])
	}
}

func TestSignFlipFallsBackWithoutBenign(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	global := []float64{5, 6}
	out, err := SignFlip{}.Craft(testCtx(rng, nil, 1, global))
	if err != nil {
		t.Fatal(err)
	}
	if vec.L2Dist(out[0], global) != 0 {
		t.Fatal("fallback should return the global model")
	}
}
