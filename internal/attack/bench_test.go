package attack

import (
	"math/rand"
	"testing"

	"repro/internal/fl"
)

func benchCtx(dim, benign int) *fl.AttackContext {
	rng := rand.New(rand.NewSource(1))
	updates := make([][]float64, benign)
	for i := range updates {
		updates[i] = make([]float64, dim)
		for j := range updates[i] {
			updates[i][j] = rng.NormFloat64()
		}
	}
	return &fl.AttackContext{
		Global:        make([]float64, dim),
		PrevGlobal:    make([]float64, dim),
		BenignUpdates: updates,
		NumAttackers:  2,
		NumSelected:   benign + 2,
		Rng:           rng,
	}
}

func benchAttack(b *testing.B, a fl.Attack) {
	b.Helper()
	ctx := benchCtx(27000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Craft(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLIE(b *testing.B)    { benchAttack(b, LIE{}) }
func BenchmarkFang(b *testing.B)   { benchAttack(b, Fang{}) }
func BenchmarkMinMax(b *testing.B) { benchAttack(b, MinMax{}) }
func BenchmarkMinSum(b *testing.B) { benchAttack(b, MinSum{}) }
