package attack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/vec"
)

func testCtx(rng *rand.Rand, benign [][]float64, attackers int, global []float64) *fl.AttackContext {
	return &fl.AttackContext{
		Round:          3,
		Global:         global,
		PrevGlobal:     global,
		BenignUpdates:  benign,
		NumAttackers:   attackers,
		NumSelected:    len(benign) + attackers,
		TotalClients:   100,
		TotalAttackers: 20,
		Rng:            rng,
	}
}

func randVecs(rng *rand.Rand, n, dim int, std float64) [][]float64 {
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = make([]float64, dim)
		for j := range vs[i] {
			vs[i][j] = rng.NormFloat64() * std
		}
	}
	return vs
}

func TestRandomWeightsInGlobalRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	global := []float64{-2, 0, 1, 3}
	ctx := testCtx(rng, nil, 3, global)
	out, err := RandomWeights{}.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d vectors, want 3", len(out))
	}
	for _, v := range out {
		if len(v) != len(global) {
			t.Fatalf("vector length %d", len(v))
		}
		for _, x := range v {
			if x < -2 || x > 3 {
				t.Fatalf("random weight %v outside global range [-2,3]", x)
			}
		}
	}
	// Different attackers get different vectors.
	if vec.L2Dist(out[0], out[1]) == 0 {
		t.Fatal("random attackers should differ")
	}
}

func TestLIEZFormula(t *testing.T) {
	a := LIE{}
	// Paper-scale population of Baruch et al.: n=50, m=12 → z ≈ 0.33.
	z := a.Z(50, 12)
	if math.Abs(z-0.33) > 0.05 {
		t.Errorf("Z(50,12) = %v, want ≈0.33", z)
	}
	// Degenerate small-population case falls back to the floor.
	if got := a.Z(10, 2); got != 0.3 {
		t.Errorf("Z(10,2) = %v, want floor 0.3", got)
	}
	if got := (LIE{ZOverride: 1.5}).Z(10, 2); got != 1.5 {
		t.Errorf("ZOverride ignored: %v", got)
	}
}

func TestLIEShiftsMeanByZStd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	benign := randVecs(rng, 8, 10, 1)
	a := LIE{ZOverride: 0.7}
	ctx := testCtx(rng, benign, 2, make([]float64, 10))
	out, err := a.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d vectors", len(out))
	}
	mean := vec.Mean(benign)
	std := vec.Std(benign)
	for j := range mean {
		want := mean[j] - 0.7*std[j]
		if math.Abs(out[0][j]-want) > 1e-9 {
			t.Fatalf("coord %d: got %v, want %v", j, out[0][j], want)
		}
	}
	// All attackers submit the same update.
	if vec.L2Dist(out[0], out[1]) != 0 {
		t.Fatal("LIE attackers should submit identical updates")
	}
}

func TestFangOpposesBenignDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 6
	global := make([]float64, dim)
	// Benign updates move every coordinate up from the global model.
	benign := make([][]float64, 5)
	for i := range benign {
		benign[i] = make([]float64, dim)
		for j := range benign[i] {
			benign[i][j] = 1 + rng.Float64() // in [1, 2]
		}
	}
	ctx := testCtx(rng, benign, 2, global)
	out, err := Fang{B: 2}.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lo := benign[0][0]
	for _, u := range benign {
		for _, x := range u {
			if x < lo {
				lo = x
			}
		}
	}
	for _, v := range out {
		for j, x := range v {
			// Every benign direction is up, so malicious coordinates must
			// sit at or below the benign minimum of that coordinate.
			minJ := math.Inf(1)
			for _, u := range benign {
				minJ = math.Min(minJ, u[j])
			}
			if x > minJ+1e-9 {
				t.Fatalf("coord %d: malicious %v not below benign min %v", j, x, minJ)
			}
			if x < minJ/2-1e-9 {
				t.Fatalf("coord %d: malicious %v below lower bound %v", j, x, minJ/2)
			}
		}
	}
}

func TestFangNegativeDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dim := 4
	global := []float64{5, 5, 5, 5}
	// Benign updates move down from 5 to ≈2: direction negative.
	benign := make([][]float64, 4)
	for i := range benign {
		benign[i] = make([]float64, dim)
		for j := range benign[i] {
			benign[i][j] = 2 + rng.Float64()*0.1
		}
	}
	ctx := testCtx(rng, benign, 1, global)
	out, err := Fang{}.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for j, x := range out[0] {
		maxJ := math.Inf(-1)
		for _, u := range benign {
			maxJ = math.Max(maxJ, u[j])
		}
		if x < maxJ-1e-9 {
			t.Fatalf("coord %d: malicious %v not above benign max %v", j, x, maxJ)
		}
	}
}

func TestMinMaxConstraintHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	benign := randVecs(rng, 8, 20, 1)
	ctx := testCtx(rng, benign, 2, make([]float64, 20))
	out, err := MinMax{}.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mal := out[0]
	bound := vec.MaxPairwiseSqDist(benign)
	worst := 0.0
	for _, b := range benign {
		if d := vec.SqDist(mal, b); d > worst {
			worst = d
		}
	}
	if worst > bound*(1+1e-6) {
		t.Fatalf("MinMax constraint violated: %v > %v", worst, bound)
	}
	// The attack should actually deviate from the mean (gamma > 0).
	if vec.L2Dist(mal, vec.Mean(benign)) < 1e-6 {
		t.Fatal("MinMax did not move away from the benign mean")
	}
}

func TestMinMaxGammaIsMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	benign := randVecs(rng, 6, 10, 1)
	a := MinMax{}
	mal, err := a.vector(benign)
	if err != nil {
		t.Fatal(err)
	}
	mean := vec.Mean(benign)
	p := perturbation(PerturbStd, benign, mean)
	bound := vec.MaxPairwiseSqDist(benign)
	// Recover gamma and verify a slightly larger one violates the bound.
	gamma := vec.L2Dist(mal, mean) / vec.Norm2(p)
	larger := vec.Add(mean, vec.Scale(p, gamma*1.05))
	worst := 0.0
	for _, b := range benign {
		if d := vec.SqDist(larger, b); d > worst {
			worst = d
		}
	}
	if worst <= bound {
		t.Fatalf("gamma %v not maximal: 1.05x still satisfies bound", gamma)
	}
}

func TestMinSumConstraintHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	benign := randVecs(rng, 8, 20, 1)
	ctx := testCtx(rng, benign, 1, make([]float64, 20))
	out, err := MinSum{}.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mal := out[0]
	bound := 0.0
	for _, bi := range benign {
		sum := 0.0
		for _, bj := range benign {
			sum += vec.SqDist(bi, bj)
		}
		bound = math.Max(bound, sum)
	}
	sum := 0.0
	for _, b := range benign {
		sum += vec.SqDist(mal, b)
	}
	if sum > bound*(1+1e-6) {
		t.Fatalf("MinSum constraint violated: %v > %v", sum, bound)
	}
}

func TestPerturbationKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	benign := randVecs(rng, 5, 6, 1)
	mean := vec.Mean(benign)
	pStd := perturbation(PerturbStd, benign, mean)
	std := vec.Std(benign)
	for j := range pStd {
		if math.Abs(pStd[j]+std[j]) > 1e-12 {
			t.Fatal("PerturbStd should be -std")
		}
	}
	pUnit := perturbation(PerturbUnit, benign, mean)
	if math.Abs(vec.Norm2(pUnit)-1) > 1e-9 {
		t.Fatal("PerturbUnit should have unit norm")
	}
	if vec.Dot(pUnit, mean) > 0 {
		t.Fatal("PerturbUnit should oppose the mean")
	}
	pSign := perturbation(PerturbSign, benign, mean)
	for j := range pSign {
		if pSign[j]*mean[j] > 0 {
			t.Fatal("PerturbSign should oppose the mean sign")
		}
	}
}

func TestOracleAttacksFallBackWithoutBenign(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	global := []float64{1, 2, 3}
	for _, a := range []fl.Attack{LIE{}, Fang{}, MinMax{}, MinSum{}} {
		ctx := testCtx(rng, nil, 2, global)
		out, err := a.Craft(ctx)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if len(out) != 2 {
			t.Fatalf("%s: %d vectors", a.Name(), len(out))
		}
		for _, v := range out {
			if vec.L2Dist(v, global) != 0 {
				t.Fatalf("%s: fallback should submit the global model", a.Name())
			}
		}
	}
}

func TestGammaSearchMonotone(t *testing.T) {
	f := func(rawBound float64) bool {
		bound := math.Mod(math.Abs(rawBound), 40) + 0.1
		got := gammaSearch(50, 1e-6, func(g float64) bool { return g <= bound })
		return math.Abs(got-bound) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// When even gammaInit satisfies the bound, return gammaInit.
	if got := gammaSearch(50, 1e-6, func(float64) bool { return true }); got != 50 {
		t.Fatalf("unconstrained gammaSearch = %v, want 50", got)
	}
}

func TestLabelFlipTrainsOnFlippedLabels(t *testing.T) {
	spec := dataset.TinySpec()
	train, _ := dataset.Generate(spec, 3)
	rng := rand.New(rand.NewSource(10))
	newModel := func(r *rand.Rand) *nn.Network {
		return nn.NewFashionCNN(r, spec.Channels, spec.Size, spec.Classes)
	}
	shard := []int{0, 1, 2, 3, 4, 5, 6, 7}
	a := &LabelFlip{Data: train, Shard: shard, LR: 0.05, Epochs: 2, BatchSize: 4}
	global := newModel(rand.New(rand.NewSource(11))).WeightVector()
	ctx := testCtx(rng, nil, 2, global)
	ctx.NewModel = newModel
	out, err := a.Craft(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d vectors", len(out))
	}
	if vec.L2Dist(out[0], global) == 0 {
		t.Fatal("labelflip should change the weights")
	}
	// Malicious training must not mutate the caller's global vector.
	if vec.L2Dist(global, ctx.Global) != 0 {
		t.Fatal("labelflip mutated the global weights")
	}
}

func TestLabelFlipRequiresData(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := &LabelFlip{}
	if _, err := a.Craft(testCtx(rng, nil, 1, []float64{1})); err == nil {
		t.Fatal("expected error without data")
	}
}

func TestReplicatePerturbs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ctx := testCtx(rng, nil, 3, []float64{0, 0, 0, 0})
	base := []float64{1, 2, 3, 4}
	out := replicate(ctx, base, 0.01)
	if len(out) != 3 {
		t.Fatalf("got %d copies", len(out))
	}
	for _, v := range out {
		d := vec.L2Dist(v, base)
		if d == 0 || d > 1 {
			t.Fatalf("perturbed copy distance %v out of expected range", d)
		}
	}
	// Perturbation must not alias the base slice.
	out[0][0] = 99
	if base[0] == 99 {
		t.Fatal("replicate aliased the base vector")
	}
}
