// Package attack implements the state-of-the-art untargeted baseline
// attacks the paper compares DFA against (Table I): LIE (Baruch et al.),
// Fang (Fang et al., the unknown-defense directed-deviation variant), and
// Min-Max / Min-Sum (Shejwalkar & Houmansadr), plus the naive random-weights
// attack the paper uses to motivate optimization-based synthesis
// (Section III-B) and a classic label-flipping attack.
//
// All baselines here require extra adversarial knowledge that DFA does not:
// they read the current round's benign updates through the
// fl.AttackContext oracle, exactly the assumption gap Table I documents.
package attack

import (
	"errors"

	"repro/internal/fl"
	"repro/internal/vec"
)

// errNoBenign signals that a knowledge-based attack had no benign updates to
// observe this round; callers fall back to submitting the global model.
var errNoBenign = errors.New("attack: no benign updates observed")

// replicate returns n copies of v (the paper allows all attackers to submit
// the same update). When perturb > 0, each copy receives i.i.d. Gaussian
// noise of that scale, the standard trick to evade Sybil defenses.
func replicate(ctx *fl.AttackContext, v []float64, perturb float64) [][]float64 {
	out := make([][]float64, ctx.NumAttackers)
	for i := range out {
		c := vec.Clone(v)
		if perturb > 0 {
			for j := range c {
				c[j] += ctx.Rng.NormFloat64() * perturb
			}
		}
		out[i] = c
	}
	return out
}

// fallback is used when an oracle-based attack cannot observe any benign
// update in a round: the attackers submit the unchanged global model, which
// is harmless and maximally inconspicuous.
func fallback(ctx *fl.AttackContext) [][]float64 {
	return replicate(ctx, ctx.Global, 0)
}

// RandomWeights is the naive attack of Section III-B: submit a model whose
// every weight is drawn uniformly from the per-coordinate range of the
// current global model. The paper reports it almost never passes defenses
// (2.62%/6.57% DPR under mKrum), which motivates DFA's optimization
// approach.
type RandomWeights struct{}

var _ fl.Attack = RandomWeights{}

// Name implements fl.Attack.
func (RandomWeights) Name() string { return "random" }

// Craft implements fl.Attack.
func (RandomWeights) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	lo, hi := ctx.Global[0], ctx.Global[0]
	for _, w := range ctx.Global {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	out := make([][]float64, ctx.NumAttackers)
	for i := range out {
		v := make([]float64, len(ctx.Global))
		for j := range v {
			v[j] = lo + ctx.Rng.Float64()*(hi-lo)
		}
		out[i] = v
	}
	return out, nil
}

// LIE is the "a little is enough" attack of Baruch et al.: shift the benign
// mean by z standard deviations per coordinate, with z derived from the
// population so the shifted update still looks like a plausible benign one.
type LIE struct {
	// ZOverride forces a specific z when positive. With the paper's
	// population (n=10 selected, m=2 attackers) the closed-form z of Baruch
	// et al. degenerates to 0, so the canonical fallback of their paper
	// (z ≈ 0.3) is used as a lower bound when ZOverride is 0.
	ZOverride float64
}

var _ fl.Attack = LIE{}

// Name implements fl.Attack.
func (LIE) Name() string { return "lie" }

// Z returns the shift factor for a round with n selected clients of which m
// are attackers.
func (a LIE) Z(n, m int) float64 {
	if a.ZOverride > 0 {
		return a.ZOverride
	}
	// s = ⌊n/2 + 1⌋ − m supporters needed; z = Φ⁻¹((n−m−s)/(n−m)).
	s := n/2 + 1 - m
	den := float64(n - m)
	if den <= 0 {
		return 0.3
	}
	p := float64(n-m-s) / den
	if p <= 0 || p >= 1 {
		return 0.3
	}
	z := vec.NormInvCDF(p)
	if z < 0.3 {
		z = 0.3
	}
	return z
}

// Craft implements fl.Attack.
func (a LIE) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	if len(ctx.BenignUpdates) == 0 {
		return fallback(ctx), nil
	}
	mean := vec.Mean(ctx.BenignUpdates)
	std := vec.Std(ctx.BenignUpdates)
	z := a.Z(ctx.NumSelected, ctx.NumAttackers)
	mal := make([]float64, len(mean))
	for j := range mal {
		mal[j] = mean[j] - z*std[j]
	}
	return replicate(ctx, mal, 0), nil
}

// Fang is the local-model-poisoning attack of Fang et al., in the
// directed-deviation form designed for trimmed-mean/median aggregation
// (the variant the paper compares against when the defense is unknown):
// estimate each coordinate's benign direction of change, then submit values
// just beyond the opposite extreme of the benign range.
type Fang struct {
	// B is the range-extension factor (paper value: 2).
	B float64
}

var _ fl.Attack = Fang{}

// Name implements fl.Attack.
func (Fang) Name() string { return "fang" }

// Craft implements fl.Attack.
func (a Fang) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	if len(ctx.BenignUpdates) == 0 {
		return fallback(ctx), nil
	}
	b := a.B
	if b <= 1 {
		b = 2
	}
	mean := vec.Mean(ctx.BenignUpdates)
	dim := len(mean)
	lo := vec.Clone(ctx.BenignUpdates[0])
	hi := vec.Clone(ctx.BenignUpdates[0])
	for _, u := range ctx.BenignUpdates[1:] {
		for j := 0; j < dim; j++ {
			if u[j] < lo[j] {
				lo[j] = u[j]
			}
			if u[j] > hi[j] {
				hi[j] = u[j]
			}
		}
	}
	out := make([][]float64, ctx.NumAttackers)
	for i := range out {
		v := make([]float64, dim)
		for j := 0; j < dim; j++ {
			dir := mean[j] - ctx.Global[j] // estimated benign change direction
			u := ctx.Rng.Float64()
			if dir > 0 {
				// Benign clients push the coordinate up; submit below the
				// benign minimum.
				if lo[j] > 0 {
					v[j] = lo[j]/b + u*(lo[j]-lo[j]/b)
				} else {
					v[j] = lo[j]*b + u*(lo[j]-lo[j]*b)
				}
			} else {
				// Benign clients push it down (or hold); submit above the
				// benign maximum.
				if hi[j] > 0 {
					v[j] = hi[j] + u*(hi[j]*b-hi[j])
				} else {
					v[j] = hi[j] + u*(hi[j]/b-hi[j])
				}
			}
		}
		out[i] = v
	}
	return out, nil
}

// PerturbKind selects the perturbation direction ∇p of the Min-Max/Min-Sum
// attacks.
type PerturbKind int

// Perturbation directions from Shejwalkar & Houmansadr; inverse standard
// deviation is the strongest in their evaluation and the paper's default.
const (
	PerturbStd PerturbKind = iota + 1
	PerturbUnit
	PerturbSign
)

func perturbation(kind PerturbKind, benign [][]float64, mean []float64) []float64 {
	switch kind {
	case PerturbUnit:
		return vec.Scale(vec.Unit(mean), -1)
	case PerturbSign:
		return vec.Scale(vec.Sign(mean), -1)
	default:
		return vec.Scale(vec.Std(benign), -1)
	}
}

// gammaSearch finds the largest gamma in [0, gammaInit] such that
// ok(gamma) holds, via binary search to the given precision. ok must be
// monotone (true for small gamma).
func gammaSearch(gammaInit, precision float64, ok func(float64) bool) float64 {
	lo, hi := 0.0, gammaInit
	if ok(hi) {
		return hi
	}
	for hi-lo > precision {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// MinMax is the AGR-agnostic attack of Shejwalkar & Houmansadr: the
// malicious update is the benign mean plus γ·∇p with γ maximized subject to
// the malicious update's maximum distance to any benign update not
// exceeding the maximum pairwise benign distance.
type MinMax struct {
	// Kind selects ∇p (default: inverse std).
	Kind PerturbKind
	// GammaInit bounds the search (default 50, per the reference code).
	GammaInit float64
}

var _ fl.Attack = MinMax{}

// Name implements fl.Attack.
func (MinMax) Name() string { return "minmax" }

// Craft implements fl.Attack.
func (a MinMax) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	mal, err := a.vector(ctx.BenignUpdates)
	if err != nil {
		if errors.Is(err, errNoBenign) {
			return fallback(ctx), nil
		}
		return nil, err
	}
	return replicate(ctx, mal, 0), nil
}

func (a MinMax) vector(benign [][]float64) ([]float64, error) {
	if len(benign) == 0 {
		return nil, errNoBenign
	}
	mean := vec.Mean(benign)
	p := perturbation(a.Kind, benign, mean)
	bound := vec.MaxPairwiseSqDist(benign)
	gInit := a.GammaInit
	if gInit <= 0 {
		gInit = 50
	}
	gamma := gammaSearch(gInit, 1e-4, func(g float64) bool {
		cand := vec.Add(mean, vec.Scale(p, g))
		worst := 0.0
		for _, bu := range benign {
			if d := vec.SqDist(cand, bu); d > worst {
				worst = d
			}
		}
		return worst <= bound
	})
	return vec.Add(mean, vec.Scale(p, gamma)), nil
}

// MinSum is the second AGR-agnostic attack of Shejwalkar & Houmansadr: like
// MinMax but the constraint bounds the *sum* of squared distances to all
// benign updates by the worst such sum among the benign updates themselves.
type MinSum struct {
	// Kind selects ∇p (default: inverse std).
	Kind PerturbKind
	// GammaInit bounds the search (default 50).
	GammaInit float64
}

var _ fl.Attack = MinSum{}

// Name implements fl.Attack.
func (MinSum) Name() string { return "minsum" }

// Craft implements fl.Attack.
func (a MinSum) Craft(ctx *fl.AttackContext) ([][]float64, error) {
	benign := ctx.BenignUpdates
	if len(benign) == 0 {
		return fallback(ctx), nil
	}
	mean := vec.Mean(benign)
	p := perturbation(a.Kind, benign, mean)
	// The bound is the worst row sum of the shared pairwise-distance matrix.
	bound := 0.0
	for _, row := range vec.SqDistMatrix(benign) {
		sum := 0.0
		for _, d := range row {
			sum += d
		}
		if sum > bound {
			bound = sum
		}
	}
	gInit := a.GammaInit
	if gInit <= 0 {
		gInit = 50
	}
	gamma := gammaSearch(gInit, 1e-4, func(g float64) bool {
		cand := vec.Add(mean, vec.Scale(p, g))
		sum := 0.0
		for _, bu := range benign {
			sum += vec.SqDist(cand, bu)
		}
		return sum <= bound
	})
	return replicate(ctx, vec.Add(mean, vec.Scale(p, gamma)), 0), nil
}
