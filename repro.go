// Package repro is a from-scratch Go reproduction of "Fabricated Flips:
// Poisoning Federated Learning without Data" (Huang, Zhao, Chen, Roos — DSN
// 2023): the data-free untargeted attacks DFA-R and DFA-G, the baseline
// attacks and robust-aggregation defenses they are evaluated against, and
// the REFD reference-dataset defense, together with the complete
// experimental harness that regenerates every table and figure of the
// paper's evaluation.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/tensor, internal/vec — numerical substrate
//   - internal/nn — CNN training stack (conv, transposed conv, backprop)
//   - internal/dataset — synthetic Fashion-MNIST/CIFAR-10/SVHN analogues
//     and Dirichlet partitioning
//   - internal/fl — the unified federated round engine (client samplers,
//     participation/churn models, server optimizers, sync and FedBuff-style
//     async buffered aggregation) and ASR/DPR metric accounting
//   - internal/population — lazy million-client virtual populations
//     (O(active)-memory shard materialization, attacker placement models,
//     hierarchical two-tier aggregation)
//   - internal/defense — FedAvg, Median, Trimmed mean, Krum/mKrum, Bulyan
//   - internal/attack — LIE, Fang, Min-Max, Min-Sum, random, label-flip
//   - internal/core — DFA-R, DFA-G, L_d regularization, REFD (the paper's
//     contributions)
//   - internal/experiment — named experiments for every table and figure
//
// Use RunExperiment to regenerate a paper artifact, or RunConfig for a
// single custom simulation. The cmd/flbench and cmd/flsim binaries wrap
// these entry points.
package repro

import (
	"fmt"
	"io"

	"repro/internal/dashboard"
	"repro/internal/experiment"
	"repro/internal/forensics"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config is a single-simulation configuration; see the field documentation
// in internal/experiment. Beyond the paper's axes (dataset, attack,
// defense, heterogeneity) it exposes the round engine's production
// participation axes — Partition, Sampler/SampleRate, DropoutProb/
// StragglerProb, ServerOpt/ServerLR/ServerMomentum, AsyncBuffer/
// AsyncMaxDelay — and the population axes: Population/MeanShard/PopCache
// (lazy O(active)-memory client populations up to 10⁶ clients), Placement
// (attacker placement models) and Groups/GroupDefense (hierarchical
// two-tier aggregation). Zero values reproduce the paper's fixed
// federation shape bit-exactly.
type Config = experiment.Config

// Outcome is a simulation result with the paper's metrics (ASR, DPR, clean
// and attacked accuracies).
type Outcome = experiment.Outcome

// Profile scales experiments between the fast "quick" setting and the
// paper-faithful "full" setting.
type Profile = experiment.Profile

// ProgressEvent reports the completion of one grid cell during a sweep.
type ProgressEvent = experiment.ProgressEvent

// RunOptions configures RunExperimentOpts beyond the profile: a durable
// run store for crash-resumable sweeps, a streaming progress callback and
// the kernel worker-pool width.
type RunOptions struct {
	// Profile names the scaling profile ("quick" or "full"; "" = quick).
	Profile string
	// StorePath, when non-empty, journals every completed grid cell (and
	// clean baseline) to an append-only JSONL store at this path.
	StorePath string
	// Resume replays cells already present in the store instead of
	// recomputing them; requires StorePath.
	Resume bool
	// Worker opens StorePath as a shared lease-coordinated store so several
	// processes can drain one grid concurrently: each cell is claimed under
	// a crash-tolerant lease before it runs, results already recorded by
	// other workers are adopted instead of recomputed, and expired leases of
	// crashed workers are reclaimed. Implies resume semantics (the shared
	// store is the fleet's ground truth); requires StorePath.
	Worker bool
	// Owner names this worker in lease records (diagnostics only; it never
	// affects results). Empty defaults to hostname-pid.
	Owner string
	// Progress, when non-nil, receives one event per completed cell.
	Progress func(ProgressEvent)
	// Threads pins the kernel worker-pool size (see SetThreads); 0 keeps
	// the current setting (default: GOMAXPROCS).
	Threads int
	// OpsAddr, when non-empty, serves the sweep's ops endpoint over HTTP at
	// this address for the run's duration: Prometheus metrics at /metrics
	// (executed cells, cell durations, lease claims/conflicts/reclaims,
	// adopted cells, kernel-pool gauges — labelled worker="<Owner>" when
	// Owner is set) and the pprof handlers under /debug/pprof/. Pure
	// observation: results are bit-identical with or without it.
	OpsAddr string
	// Dash mounts the embedded operator dashboard at /dash/ on the ops
	// endpoint: the fleet panel renders the sweep metrics live, and with
	// DashReplay the time-travel/diff tab serves finished runs. Requires
	// OpsAddr. Pure observation, like the rest of the ops plane.
	Dash bool
	// DashReplay lists journal paths (comma-separated; audit journals or
	// run stores) to load into the dashboard's replay tab. Requires Dash.
	DashReplay string
	// OnOpsBound, when non-nil, receives the ops listener's resolved
	// address once it is serving — the hook the -dash startup hint prints
	// the dashboard URL through.
	OnOpsBound func(addr string)
}

// SetThreads pins the process-global kernel worker-pool size: the bound on
// concurrent goroutines across the blocked GEMM kernels, convolution batch
// fan-out, client training, evaluation and defense scoring. n <= 0 resets
// to GOMAXPROCS. Thread count never changes results, only wall-clock — use
// it to pin sweeps on shared machines.
func SetThreads(n int) { tensor.SetWorkers(n) }

// NewRunner returns a fresh experiment runner with an empty clean-baseline
// cache.
func NewRunner() *experiment.Runner { return experiment.NewRunner() }

// RunConfig executes a single simulation, filling the clean baseline and
// attack success rate.
func RunConfig(cfg Config) (*Outcome, error) {
	return experiment.NewRunner().Run(cfg)
}

// RunConfigOpts executes a single simulation with run-store support: with
// a StorePath the completed run (and its clean baseline) is journaled, and
// with Resume a journaled run is replayed instead of recomputed.
func RunConfigOpts(cfg Config, opts RunOptions) (out *Outcome, retErr error) {
	if opts.Threads > 0 {
		SetThreads(opts.Threads)
	}
	runner := experiment.NewRunner()
	runner.Progress = opts.Progress
	closeStore, err := attachStore(runner, opts)
	if err != nil {
		return nil, err
	}
	defer closeStore()
	closeOps, err := attachOps(runner, opts)
	if err != nil {
		return nil, err
	}
	defer func() {
		// An ops plane that failed to drain is a real fault; don't let it
		// vanish on the way out (but never mask the run's own error).
		if cerr := closeOps(); cerr != nil && retErr == nil {
			out, retErr = nil, fmt.Errorf("repro: ops shutdown: %w", cerr)
		}
	}()
	outs, err := runner.RunGrid([]Config{cfg}, 1)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// attachStore opens the run store the options describe — none, a
// single-owner journal, or (Worker) a shared lease-coordinated store — and
// wires it into the runner. The returned func closes whatever was opened.
func attachStore(runner *experiment.Runner, opts RunOptions) (func(), error) {
	if opts.StorePath == "" {
		switch {
		case opts.Resume:
			return nil, fmt.Errorf("repro: Resume requires StorePath")
		case opts.Worker:
			return nil, fmt.Errorf("repro: Worker requires StorePath")
		}
		return func() {}, nil
	}
	if opts.Worker {
		store, err := experiment.OpenSharedStore(opts.StorePath, opts.Owner)
		if err != nil {
			return nil, err
		}
		runner.Store = store
		// The leased grid always resumes: the shared store is the fleet's
		// ground truth, so recorded cells are adopted, never recomputed.
		runner.Resume = true
		return func() { _ = store.Close() }, nil
	}
	store, err := experiment.OpenStore(opts.StorePath)
	if err != nil {
		return nil, err
	}
	runner.Store = store
	runner.Resume = opts.Resume
	return func() { _ = store.Close() }, nil
}

// attachOps serves the sweep-level ops endpoint when the options ask for
// one, and wires the fleet instruments (cells, leases, throughput) into the
// runner so progress lines and /metrics agree. With Dash it also mounts the
// embedded dashboard (fleet panel, and the replay/diff tab when DashReplay
// names journals). The returned func drains the endpoint and reports real
// serve/drain errors.
func attachOps(runner *experiment.Runner, opts RunOptions) (func() error, error) {
	if opts.OpsAddr == "" {
		if opts.Dash {
			return nil, fmt.Errorf("repro: Dash requires OpsAddr (the dashboard rides the ops listener)")
		}
		return func() error { return nil }, nil
	}
	reg := telemetry.NewRegistry()
	telemetry.RegisterPoolGauges(reg, tensor.Workers, tensor.InUse)
	runner.Telemetry = telemetry.NewSweepTelemetry(reg, nil, opts.Owner)
	mux := telemetry.NewOpsMux(reg)
	if opts.Dash {
		replayRuns, err := experiment.LoadDashReplay(opts.DashReplay)
		if err != nil {
			return nil, fmt.Errorf("repro: %w", err)
		}
		if len(replayRuns) > 0 {
			forensics.NewReplay(replayRuns).Mount(mux, dashboard.Prefix+"/api/replay")
		}
		dashboard.Mount(mux, dashboard.Config{
			Title:  "fl sweep dashboard",
			Fleet:  true,
			Replay: len(replayRuns) > 0,
		})
	}
	bound, shutdown, err := telemetry.ServeOps(opts.OpsAddr, mux)
	if err != nil {
		return nil, fmt.Errorf("repro: ops endpoint: %w", err)
	}
	if opts.OnOpsBound != nil {
		opts.OnOpsBound(bound)
	}
	return shutdown, nil
}

// ProgressWriter returns a RunOptions.Progress callback that streams one
// human-readable line per completed cell to w.
func ProgressWriter(w io.Writer) func(ProgressEvent) {
	return report.Progress(w)
}

// Experiments lists the IDs of all reproducible paper artifacts in paper
// order (table2, fig4, … samplesize).
func Experiments() []string {
	all := experiment.All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// RunExperiment regenerates the named table or figure under the given
// profile ("quick" or "full"), writing the paper-style rows to w.
func RunExperiment(id, profileName string, w io.Writer) error {
	return RunExperimentOpts(id, RunOptions{Profile: profileName}, w)
}

// RunExperimentOpts regenerates the named table or figure with full control
// over profile, run store and progress reporting, writing the paper-style
// rows to w. With a StorePath, completed cells are journaled as they
// finish; with Resume, a re-run against the same store executes only the
// cells the previous (possibly killed) run did not complete.
func RunExperimentOpts(id string, opts RunOptions, w io.Writer) (retErr error) {
	exp, ok := experiment.ByID(id)
	if !ok {
		return fmt.Errorf("repro: unknown experiment %q (known: %v)", id, Experiments())
	}
	profile, ok := experiment.ProfileByName(opts.Profile)
	if !ok {
		return fmt.Errorf("repro: unknown profile %q (known: quick, full)", opts.Profile)
	}
	if opts.Threads > 0 {
		SetThreads(opts.Threads)
	}
	runner := experiment.NewRunner()
	runner.AverageSeeds = profile.SeedCount
	runner.Progress = opts.Progress
	closeStore, err := attachStore(runner, opts)
	if err != nil {
		return err
	}
	defer closeStore()
	closeOps, err := attachOps(runner, opts)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeOps(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("repro: ops shutdown: %w", cerr)
		}
	}()
	if _, err := fmt.Fprintf(w, "# %s [profile=%s]\n", exp.Title, profile.Name); err != nil {
		return err
	}
	return exp.Run(runner, profile, w)
}
