// Package repro is a from-scratch Go reproduction of "Fabricated Flips:
// Poisoning Federated Learning without Data" (Huang, Zhao, Chen, Roos — DSN
// 2023): the data-free untargeted attacks DFA-R and DFA-G, the baseline
// attacks and robust-aggregation defenses they are evaluated against, and
// the REFD reference-dataset defense, together with the complete
// experimental harness that regenerates every table and figure of the
// paper's evaluation.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/tensor, internal/vec — numerical substrate
//   - internal/nn — CNN training stack (conv, transposed conv, backprop)
//   - internal/dataset — synthetic Fashion-MNIST/CIFAR-10/SVHN analogues
//     and Dirichlet partitioning
//   - internal/fl — federated round loop, ASR/DPR metric accounting
//   - internal/defense — FedAvg, Median, Trimmed mean, Krum/mKrum, Bulyan
//   - internal/attack — LIE, Fang, Min-Max, Min-Sum, random, label-flip
//   - internal/core — DFA-R, DFA-G, L_d regularization, REFD (the paper's
//     contributions)
//   - internal/experiment — named experiments for every table and figure
//
// Use RunExperiment to regenerate a paper artifact, or RunConfig for a
// single custom simulation. The cmd/flbench and cmd/flsim binaries wrap
// these entry points.
package repro

import (
	"fmt"
	"io"

	"repro/internal/experiment"
)

// Config is a single-simulation configuration; see the field documentation
// in internal/experiment.
type Config = experiment.Config

// Outcome is a simulation result with the paper's metrics (ASR, DPR, clean
// and attacked accuracies).
type Outcome = experiment.Outcome

// Profile scales experiments between the fast "quick" setting and the
// paper-faithful "full" setting.
type Profile = experiment.Profile

// NewRunner returns a fresh experiment runner with an empty clean-baseline
// cache.
func NewRunner() *experiment.Runner { return experiment.NewRunner() }

// RunConfig executes a single simulation, filling the clean baseline and
// attack success rate.
func RunConfig(cfg Config) (*Outcome, error) {
	return experiment.NewRunner().Run(cfg)
}

// Experiments lists the IDs of all reproducible paper artifacts in paper
// order (table2, fig4, … samplesize).
func Experiments() []string {
	all := experiment.All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// RunExperiment regenerates the named table or figure under the given
// profile ("quick" or "full"), writing the paper-style rows to w.
func RunExperiment(id, profileName string, w io.Writer) error {
	exp, ok := experiment.ByID(id)
	if !ok {
		return fmt.Errorf("repro: unknown experiment %q (known: %v)", id, Experiments())
	}
	profile, ok := experiment.ProfileByName(profileName)
	if !ok {
		return fmt.Errorf("repro: unknown profile %q (known: quick, full)", profileName)
	}
	runner := experiment.NewRunner()
	runner.AverageSeeds = profile.SeedCount
	if _, err := fmt.Fprintf(w, "# %s [profile=%s]\n", exp.Title, profile.Name); err != nil {
		return err
	}
	return exp.Run(runner, profile, w)
}
