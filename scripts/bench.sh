#!/usr/bin/env bash
# bench.sh — run the kernel-layer benchmarks (tensor, nn, defense, fl) and
# emit a JSON record of ns/op per benchmark for the repo's perf trajectory.
#
# Usage:
#   scripts/bench.sh [out.json]        # default out: bench_results.json
#   BENCHTIME=1x scripts/bench.sh      # smoke mode (one iteration each)
#
# The PR-numbered trajectory files (BENCH_2.json, …) are produced from this
# output together with the pre-change numbers recorded before a perf PR.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench_results.json}"
benchtime="${BENCHTIME:-2s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench . -benchtime "$benchtime" \
	./internal/tensor ./internal/nn ./internal/defense ./internal/fl \
	./internal/forensics ./internal/codec \
	./internal/persist ./internal/experiment ./internal/flnet \
	| tee "$tmp" >&2

{
	printf '{\n'
	printf '  "generated_by": "scripts/bench.sh",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(nproc)"
	printf '  "results_ns_per_op": {\n'
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			if (seen++) printf ",\n"
			printf "    \"%s\": %s", name, $3
		}
		END { printf "\n" }
	' "$tmp"
	printf '  }\n'
	printf '}\n'
} >"$out"

echo "wrote $out" >&2
