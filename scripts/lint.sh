#!/usr/bin/env bash
# lint.sh — the repo's full static-analysis gate, runnable locally and in CI.
#
#   scripts/lint.sh
#
# Runs, in order:
#   1. go vet (stdlib analyzers)
#   2. staticcheck, if installed (CI pins honnef.co/go/tools @2025.1.1;
#      check set comes from staticcheck.conf at the repo root)
#   3. fllint — the repo's own invariant analyzers (internal/analysis):
#      determinism, runkey, poolescape, nanjson
#
# Exits nonzero on the first failing stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "==> staticcheck"
    staticcheck ./...
else
    echo "==> staticcheck not installed; skipping (CI runs it pinned)"
fi

echo "==> fllint"
go run ./cmd/fllint ./...

echo "lint: all clean"
