#!/usr/bin/env bash
# sweep_smoke.sh — end-to-end smoke test of the distributed sweep substrate:
# two flbench -worker processes drain one 6-cell grid (the samplesize
# experiment) against a single shared JSONL store, then the script asserts
# full coverage, zero duplicate result records, and identical rendered
# tables from both workers.
#
# Usage: scripts/sweep_smoke.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."

work="${1:-$(mktemp -d)}"
store="$work/shared.jsonl"
rm -f "$store"

go build -o "$work/flbench" ./cmd/flbench

"$work/flbench" -exp samplesize -store "$store" -worker -owner smoke-w1 -progress \
	>"$work/out1.log" 2>"$work/w1.log" &
pid1=$!
"$work/flbench" -exp samplesize -store "$store" -worker -owner smoke-w2 -progress \
	>"$work/out2.log" 2>"$work/w2.log" &
pid2=$!
wait "$pid1"
wait "$pid2"

# The samplesize grid is 6 cells sharing one clean baseline: exactly 7
# result records, each exactly once. Lease records (key prefix "lease|")
# are bookkeeping, not results.
results="$(grep -o '"key":"[^"]*"' "$store" | grep -vc '"key":"lease|' || true)"
if [[ "$results" != 7 ]]; then
	echo "sweep_smoke: expected 7 result records (6 cells + 1 baseline), got $results" >&2
	grep -o '"key":"[^"]*"' "$store" >&2
	exit 1
fi

dups="$(grep -o '"key":"[^"]*"' "$store" | grep -v 'lease|' | sort | uniq -d)"
if [[ -n "$dups" ]]; then
	echo "sweep_smoke: duplicate result records in $store:" >&2
	echo "$dups" >&2
	exit 1
fi

# Both workers must have executed at least one cell (the grid was actually
# shared) and adopted at least one (coordination actually happened).
for w in 1 2; do
	if ! grep -q 'elapsed' "$work/w$w.log"; then
		echo "sweep_smoke: worker $w reported no progress" >&2
		exit 1
	fi
done
if ! grep -q 'completed by another worker' "$work/w1.log" &&
	! grep -q 'completed by another worker' "$work/w2.log"; then
	echo "sweep_smoke: no worker adopted a remote cell — the grid was not shared" >&2
	exit 1
fi

# Bit-identical science: both workers render the same table (only the
# timing line may differ).
if ! diff <(grep -v '^## ' "$work/out1.log") <(grep -v '^## ' "$work/out2.log"); then
	echo "sweep_smoke: workers rendered different tables" >&2
	exit 1
fi

echo "sweep_smoke: OK — 2 workers, 6 cells + 1 baseline, zero duplicates, identical tables"
