// Example scenarios: the round engine's production-participation axes.
//
// The paper evaluates DFA under one fixed federation shape (N=100, uniform
// K=10, synchronous FedAvg). This example runs the same attack/defense cell
// under two production cross-device scenarios: Bernoulli sampling with
// client churn and a FedAvgM server optimizer, and FedBuff-style async
// buffered aggregation with staleness discounting.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	base := repro.Config{
		Dataset:      "fashion-sim",
		Attack:       "dfa-r",
		Defense:      "mkrum",
		Beta:         0.5,
		Seed:         1,
		Rounds:       8,
		TrainN:       3000,
		EvalLimit:    250,
		SampleCount:  10,
		TotalClients: 40,
		PerRound:     8,
		Parallel:     true,
	}

	churn := base
	churn.Sampler = "bernoulli" // each client joins w.p. K/N, so rounds vary in size
	churn.DropoutProb = 0.2     // 20% of selections never train
	churn.StragglerProb = 0.1   // 10% train but miss the deadline
	churn.ServerOpt = "fedavgm" // server momentum smooths the noisy rounds

	async := base
	async.AsyncBuffer = 5   // aggregate whenever 5 updates are buffered
	async.AsyncMaxDelay = 2 // updates arrive up to 2 rounds late

	for _, c := range []struct {
		name string
		cfg  repro.Config
	}{
		{"paper shape (sync uniform)", base},
		{"bernoulli + churn + fedavgm", churn},
		{"async buffered (FedBuff-style)", async},
	} {
		out, err := repro.RunConfig(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		var selected, dropped, straggled, responded, aggs int
		for _, rs := range out.Trace {
			selected += rs.Selected
			dropped += rs.Dropped
			straggled += rs.Straggled
			responded += rs.Responded
			aggs += rs.Aggregations
		}
		dpr := "N/A"
		if !math.IsNaN(out.DPR) {
			dpr = fmt.Sprintf("%.1f%%", out.DPR)
		}
		fmt.Printf("%-32s acc_m=%5.2f%% ASR=%6.2f%% DPR=%s  selected=%d dropped=%d straggled=%d responded=%d aggregations=%d\n",
			c.name, out.MaxAcc*100, out.ASR, dpr, selected, dropped, straggled, responded, aggs)
	}
}
