// Example forensics: auditing every defense decision and reading the
// detection-quality metrics the endpoint numbers hide.
//
// The paper scores defenses by DPR and accuracy, but two defenses with the
// same DPR can behave very differently in production: one filters exactly
// the attackers, the other filters half its benign clients along with
// them. This example runs a Min-Max/REFD cell with the forensics
// subsystem attached: every update is fingerprinted (norm, cosine to the
// round mean, neighbour distances), every accept/reject decision is
// joined against ground truth, and the streaming metrics engine maintains
// TPR/FPR/F1 plus ROC AUC over REFD's D-scores — the Shejwalkar-style
// detection view. The same data is written to a JSONL audit journal and,
// in a real run, can be served live over HTTP (flsim -forensics-addr).
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	auditPath := filepath.Join(os.TempDir(), "forensics-example-audit.jsonl")
	_ = os.Remove(auditPath) // the example reruns from scratch

	cfg := repro.Config{
		Dataset:      "tiny-sim",
		Attack:       "minmax",
		Defense:      "refd",
		Beta:         0.5,
		Seed:         1,
		Rounds:       6,
		EvalLimit:    80,
		AttackerFrac: 0.25,
		RefPerClass:  8,
		Parallel:     true,
		Forensics:    true,
		AuditPath:    auditPath,
	}

	out, err := repro.RunConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}

	na := func(v float64) string {
		if math.IsNaN(v) {
			return "N/A"
		}
		return fmt.Sprintf("%.3f", v)
	}
	dpr := "N/A"
	if !math.IsNaN(out.DPR) {
		dpr = fmt.Sprintf("%.2f%%", out.DPR)
	}
	fmt.Printf("cell: %s vs %s, %g%% attackers\n", cfg.Attack, cfg.Defense, cfg.AttackerFrac*100)
	fmt.Printf("endpoint view:  acc_m=%.2f%% ASR=%.2f%% DPR=%s\n", out.MaxAcc*100, out.ASR, dpr)

	d := out.Detection
	if d == nil {
		log.Fatal("forensics summary missing")
	}
	fmt.Printf("detection view: TPR=%s FPR=%s precision=%s F1=%s\n",
		na(d.TPR), na(d.FPR), na(d.Precision), na(d.F1))
	fmt.Printf("ROC over %s scores: AUC=%s TPR@1%%FPR=%s (%d score pairs, reservoir %d)\n",
		d.ScoreName, na(d.AUC), na(d.TPRAt1FPR), d.ScorePairs, d.ReservoirLen)
	fmt.Printf("audited %d aggregations (%d zero-selection) over %d updates, %d malicious\n",
		d.Aggregations, d.ZeroSelectionRounds, d.Updates, d.MaliciousSeen)
	if fi, err := os.Stat(auditPath); err == nil {
		fmt.Printf("audit journal: %s (%d bytes of per-update fingerprints + decisions)\n", auditPath, fi.Size())
	}
	fmt.Println("note: DPR only counts attackers that slipped through; the FPR column above is what")
	fmt.Println("a production operator pays for the defense — benign clients filtered every round.")
}
