// Example population: a million-client cross-device federation in
// O(active clients) memory.
//
// The paper evaluates DFA with 100 clients and 20% attackers; production
// cross-device FL (Shejwalkar et al., "Back to the Drawing Board") means
// millions of enrolled devices, tiny per-round samples and attacker
// fractions below 1%. This example runs one DFA-R/mKrum cell over a
// 1,000,000-client virtual population with scattered 0.1% attacker
// placement and hierarchical two-tier aggregation — shards are derived
// lazily per participant, so the run allocates for the ~40 clients it
// touches per round, never for the million it models.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	cfg := repro.Config{
		Dataset:      "tiny-sim",
		Attack:       "dfa-r",
		Defense:      "mkrum",
		Beta:         0.5,
		Seed:         1,
		Rounds:       6,
		EvalLimit:    80,
		SampleCount:  10,
		TotalClients: 1000000, // a million virtual devices
		PerRound:     40,      // of which 40 participate per round
		AttackerFrac: 0.001,   // 0.1% compromised — the production regime
		Population:   "virtual",
		Placement:    "scatter", // attackers spread through the ID space
		Groups:       4,         // 4 group aggregators under a robust server tier
		Parallel:     true,
	}

	out, err := repro.RunConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("N=%d per-round=%d attacker-frac=%g placement=%s groups=%d\n",
		cfg.TotalClients, cfg.PerRound, cfg.AttackerFrac, cfg.Placement, cfg.Groups)
	selMal := 0
	for _, rs := range out.Trace {
		selMal += rs.SelectedMalicious
	}
	dpr := "N/A"
	if !math.IsNaN(out.DPR) {
		dpr = fmt.Sprintf("%.2f%%", out.DPR)
	}
	fmt.Printf("clean=%.2f%% acc_m=%.2f%% ASR=%.2f%% DPR=%s malicious-selections=%d\n",
		out.CleanAcc*100, out.MaxAcc*100, out.ASR, dpr, selMal)
	fmt.Println("note: at 0.1% compromise a 40-of-1M sample selects an attacker in only ~4% of rounds —")
	fmt.Println("the dilution effect that makes production-scale poisoning a different problem from the paper's 20%.")
}
