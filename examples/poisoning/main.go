// Poisoning comparison: the scenario from the paper's introduction — an
// operator wants to know which untargeted poisoning attacks their
// Bulyan-defended cross-device deployment must fear, and whether an
// attacker *without data or eavesdropping capability* (DFA) is as dangerous
// as the stronger classical adversaries (LIE, Fang, Min-Max) that need
// benign updates or real data.
package main

import (
	"fmt"
	"math"
	"os"
	"sort"

	"repro"
)

func main() {
	runner := repro.NewRunner()
	attacks := []string{"fang", "lie", "minmax", "minsum", "dfa-r", "dfa-g"}
	knowledge := map[string]string{
		"fang":   "benign updates",
		"lie":    "benign updates",
		"minmax": "benign updates",
		"minsum": "benign updates",
		"dfa-r":  "NONE (data-free)",
		"dfa-g":  "NONE (data-free)",
	}

	type row struct {
		attack string
		asr    float64
		dpr    float64
	}
	var rows []row
	for _, atk := range attacks {
		out, err := runner.Run(repro.Config{
			Dataset:     "fashion-sim",
			Attack:      atk,
			Defense:     "bulyan",
			Beta:        0.5,
			Rounds:      12,
			SampleCount: 20,
			Parallel:    true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "poisoning:", err)
			os.Exit(1)
		}
		rows = append(rows, row{atk, out.ASR, out.DPR})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].asr > rows[j].asr })

	fmt.Println("Attack ranking on fashion-sim under Bulyan (β = 0.5, 20% attackers)")
	fmt.Printf("%-8s  %-18s  %8s  %8s\n", "attack", "adversary needs", "ASR%", "DPR%")
	for _, r := range rows {
		dpr := "N/A"
		if !math.IsNaN(r.dpr) {
			dpr = fmt.Sprintf("%.1f", r.dpr)
		}
		fmt.Printf("%-8s  %-18s  %8.1f  %8s\n", r.attack, knowledge[r.attack], r.asr, dpr)
	}
	fmt.Println()
	fmt.Println("The DFA variants need neither benign updates nor any real data, yet")
	fmt.Println("rank alongside (often above) the knowledge-hungry baselines — the")
	fmt.Println("paper's core claim.")
}
