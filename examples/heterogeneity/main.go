// Heterogeneity sweep: Section IV-D of the paper — how the degree of
// non-i.i.d.-ness of client data (Dirichlet β) changes both the clean
// federation accuracy and the attack's success, here for DFA-R against
// Bulyan on the CIFAR-like task. More heterogeneity means more diverse
// benign updates, a weaker reference point for outlier detection, and a
// stronger attack.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	runner := repro.NewRunner()
	fmt.Println("DFA-R vs Bulyan on cifar-sim across heterogeneity levels")
	fmt.Printf("%-10s  %10s  %10s  %8s\n", "beta", "clean_acc%", "attacked%", "ASR%")
	for _, beta := range []float64{0.1, 0.5, 0.9} {
		out, err := runner.Run(repro.Config{
			Dataset:     "cifar-sim",
			Attack:      "dfa-r",
			Defense:     "bulyan",
			Beta:        beta,
			Rounds:      12,
			SampleCount: 20,
			Parallel:    true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "heterogeneity:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10.1f  %10.1f  %10.1f  %8.1f\n",
			beta, out.CleanAcc*100, out.MaxAcc*100, out.ASR)
	}
	fmt.Println()
	fmt.Println("Lower β = more skewed client label distributions. The clean accuracy")
	fmt.Println("drops with heterogeneity while the attack gains ground — the trend of")
	fmt.Println("the paper's Fig. 5.")
}
