// Quickstart: run the paper's headline scenario end to end — the data-free
// DFA-R attack against a Multi-Krum-defended federation on the
// Fashion-MNIST-like task — and print the two metrics the paper reports
// (attack success rate and defense pass rate).
package main

import (
	"fmt"
	"math"
	"os"

	"repro"
)

func main() {
	cfg := repro.Config{
		Dataset:      "fashion-sim",
		Attack:       "dfa-r",
		Defense:      "mkrum",
		Beta:         0.5, // Dirichlet heterogeneity, the paper's default
		AttackerFrac: 0.2, // 20 of 100 clients are malicious
		Rounds:       12,
		SampleCount:  20, // |S|: synthetic images per round
		Parallel:     true,
	}
	out, err := repro.RunConfig(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	fmt.Println("DFA-R vs Multi-Krum on fashion-sim (β = 0.5, 20% attackers)")
	fmt.Printf("  clean accuracy (no attack, no defense): %.1f%%\n", out.CleanAcc*100)
	fmt.Printf("  best accuracy under attack (acc_m):     %.1f%%\n", out.MaxAcc*100)
	fmt.Printf("  attack success rate (ASR):              %.1f%%\n", out.ASR)
	if !math.IsNaN(out.DPR) {
		fmt.Printf("  defense pass rate (DPR):                %.1f%%\n", out.DPR)
	}
	fmt.Println()
	fmt.Println("Per-round global model accuracy:")
	for i, acc := range out.AccTimeline {
		if math.IsNaN(acc) {
			continue
		}
		bar := ""
		for j := 0; j < int(acc*50); j++ {
			bar += "#"
		}
		fmt.Printf("  round %2d  %.3f  %s\n", i+1, acc, bar)
	}
}
