// Defense scenario: the paper's Section V — a server under attack by the
// data-free DFA-G adversary compares the strongest classical defense
// (Bulyan) with REFD, the reference-dataset defense built for data-free
// attacks, at high data heterogeneity where classical defenses struggle
// most.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	runner := repro.NewRunner()
	base := repro.Config{
		Dataset:     "fashion-sim",
		Attack:      "dfa-g",
		Beta:        0.1, // highly heterogeneous clients
		Rounds:      12,
		SampleCount: 20,
		Parallel:    true,
	}

	fmt.Println("DFA-G at high heterogeneity (β = 0.1) on fashion-sim")
	var cleanAcc float64
	for _, def := range []string{"bulyan", "refd"} {
		cfg := base
		cfg.Defense = def
		out, err := runner.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "defense:", err)
			os.Exit(1)
		}
		cleanAcc = out.CleanAcc
		fmt.Printf("  %-7s  best accuracy under attack: %5.1f%%   ASR: %5.1f%%\n",
			def, out.MaxAcc*100, out.ASR)
	}
	fmt.Printf("  (clean accuracy without attack or defense: %.1f%%)\n\n", cleanAcc*100)
	fmt.Println("REFD scores every update on a small balanced reference set: biased")
	fmt.Println("predictions (DFA-G's signature) lower its balance value B, low")
	fmt.Println("confidence (DFA-R's signature) lowers V, and the D-score rejection")
	fmt.Println("removes the attackers that distance-based selection lets through.")
}
